"""The fault injector: schedules a plan's events into the sim kernel.

:class:`FaultInjector` turns the declarative
:class:`~repro.faults.plan.FaultPlan` into scheduled callbacks on a
:class:`~repro.sim.kernel.Simulator`: GPS degradation windows toggle
:meth:`~repro.geo.gps.GpsReceiver.set_degradation`, battery brownouts
call :meth:`~repro.airframe.battery.Battery.brownout`, node losses fire
registered callbacks (the chaos runner checkpoints the transfer and
re-solves the decision), and link outages are counted here but *applied*
through the :class:`~repro.faults.outage.OutageSchedule` compiled into
the link engines — keeping the hot path free of kernel callbacks.

Every fired fault increments a ``faults.<kind>`` counter on the
injected :class:`~repro.perf.PerfTelemetry`, so campaign reports can
say how much chaos a run actually experienced.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

from ..core.failure import failure_rate_from_platform
from ..obs.events import EventLog
from ..perf import PerfTelemetry
from ..sim.kernel import Simulator
from ..sim.random import RandomStreams
from .plan import FaultPlan, FaultSpec

__all__ = [
    "FaultInjector",
    "sample_crash_distance_m",
    "sample_crash_distance_for_platform",
]


def sample_crash_distance_m(
    rng: np.random.Generator, rate_per_m: float
) -> float:
    """Distance flown before the UAV is lost, under the Eq.-1 hazard.

    The paper's discount ``δ(d) = exp(-ρ(d0-d))`` is the survival
    function of an exponential crash distance with rate ``ρ`` per
    metre; sampling that distance is one draw from
    ``Exponential(1/ρ)``.
    """
    if rate_per_m <= 0:
        raise ValueError("rate_per_m must be positive")
    return float(rng.exponential(1.0 / rate_per_m))


def sample_crash_distance_for_platform(
    rng: np.random.Generator, spec, endurance_s: float = 900.0
) -> float:
    """Crash distance for a platform, via ``failure_rate_from_platform``."""
    return sample_crash_distance_m(
        rng, failure_rate_from_platform(spec, endurance_s=endurance_s)
    )


class FaultInjector:
    """Arms a :class:`FaultPlan` on a simulator and tracks what fired."""

    def __init__(
        self,
        sim: Simulator,
        plan: FaultPlan,
        streams: Optional[RandomStreams] = None,
        telemetry: Optional[PerfTelemetry] = None,
        events: Optional[EventLog] = None,
    ) -> None:
        self.sim = sim
        self.plan = plan
        self.streams = streams
        self.telemetry = telemetry
        self.events = events
        self.node_lost = False
        self.node_lost_at_s: Optional[float] = None
        #: ``(time_s, kind)`` log of every fault that fired, in order.
        self.fired: List[Tuple[float, str]] = []
        self._gps_receivers: List = []
        self._batteries: List = []
        self._node_loss_callbacks: List[Callable[[FaultSpec], None]] = []
        self._armed = False

    # ------------------------------------------------------------------
    def attach_gps(self, receiver) -> None:
        """Subject a GPS receiver to ``gps_degradation`` faults."""
        self._gps_receivers.append(receiver)

    def attach_battery(self, battery) -> None:
        """Subject a battery to ``battery_brownout`` faults."""
        self._batteries.append(battery)

    def on_node_loss(self, callback: Callable[[FaultSpec], None]) -> None:
        """Register a callback fired when a ``node_loss`` fault hits."""
        self._node_loss_callbacks.append(callback)

    # ------------------------------------------------------------------
    def arm(self) -> None:
        """Schedule every fault of the plan onto the simulator.

        Idempotent per injector; an empty plan schedules nothing (the
        strict no-op guarantee).
        """
        if self._armed:
            raise RuntimeError("fault plan is already armed")
        self._armed = True
        for spec in self.plan.faults:
            if spec.kind == "gps_degradation":
                self.sim.schedule(
                    spec.at_s, self._make_gps_onset(spec)
                )
                self.sim.schedule(
                    spec.end_s, self._make_gps_restore(spec)
                )
            elif spec.kind == "battery_brownout":
                self.sim.schedule(spec.at_s, self._make_brownout(spec))
            elif spec.kind == "node_loss":
                self.sim.schedule(spec.at_s, self._make_node_loss(spec))
            elif spec.kind == "link_outage":
                # Applied by the OutageSchedule inside the link engine;
                # scheduled here only so the fired log and telemetry see
                # the window open.
                self.sim.schedule(spec.at_s, self._make_outage_marker(spec))

    # ------------------------------------------------------------------
    def _record(self, kind: str) -> None:
        self.fired.append((self.sim.now, kind))
        if self.telemetry is not None:
            self.telemetry.count(f"faults.{kind}")
        if self.events is not None:
            self.events.emit(f"fault.{kind}", self.sim.now)

    def _make_gps_onset(self, spec: FaultSpec) -> Callable[[], None]:
        def onset() -> None:
            for receiver in self._gps_receivers:
                receiver.set_degradation(spec.magnitude)
            self._record("gps_degradation")

        return onset

    def _make_gps_restore(self, spec: FaultSpec) -> Callable[[], None]:
        def restore() -> None:
            for receiver in self._gps_receivers:
                receiver.set_degradation(1.0)

        return restore

    def _make_brownout(self, spec: FaultSpec) -> Callable[[], None]:
        def brownout() -> None:
            for battery in self._batteries:
                battery.brownout(spec.magnitude)
            self._record("battery_brownout")

        return brownout

    def _make_node_loss(self, spec: FaultSpec) -> Callable[[], None]:
        def node_loss() -> None:
            if self.node_lost:
                return  # a node is only lost once
            self.node_lost = True
            self.node_lost_at_s = self.sim.now
            self._record("node_loss")
            for callback in self._node_loss_callbacks:
                callback(spec)

        return node_loss

    def _make_outage_marker(self, spec: FaultSpec) -> Callable[[], None]:
        def marker() -> None:
            self._record("link_outage")

        return marker
