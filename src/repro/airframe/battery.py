"""Battery model.

A simple state-of-charge integrator: the battery drains at a nominal
rate while airborne, with hovering and high-speed flight costing extra.
It backs the paper's failure-rate choice (rho = 1 / full-battery range)
and lets mission simulations abort when energy runs out.
"""

from __future__ import annotations

from .platform import PlatformSpec

__all__ = ["Battery", "BatteryDepleted"]


class BatteryDepleted(RuntimeError):
    """Raised when energy is drawn from an empty battery."""


class Battery:
    """Tracks remaining flight time for one UAV.

    The unit of charge is *seconds of nominal (cruise) flight*; a full
    battery holds ``spec.battery_autonomy_s`` of it.
    """

    #: Multiplier on drain while hovering (rotorcraft hover is expensive).
    HOVER_FACTOR = 1.1
    #: Additional quadratic penalty for flying above cruise speed.
    SPEED_PENALTY = 0.5

    def __init__(self, spec: PlatformSpec, charge_fraction: float = 1.0) -> None:
        if not 0.0 <= charge_fraction <= 1.0:
            raise ValueError("charge_fraction must be within [0, 1]")
        self.spec = spec
        self._remaining_s = spec.battery_autonomy_s * charge_fraction

    @property
    def remaining_s(self) -> float:
        """Remaining charge in seconds of cruise flight."""
        return self._remaining_s

    @property
    def fraction(self) -> float:
        """State of charge in [0, 1]."""
        return self._remaining_s / self.spec.battery_autonomy_s

    @property
    def depleted(self) -> bool:
        """Whether the battery is empty."""
        return self._remaining_s <= 0.0

    def remaining_range_m(self) -> float:
        """Distance still coverable at cruise speed."""
        return max(0.0, self._remaining_s) * self.spec.cruise_speed_mps

    def drain_rate(self, speed_mps: float, hovering: bool) -> float:
        """Charge-seconds consumed per wall-clock second at this state."""
        if hovering:
            return self.HOVER_FACTOR
        cruise = self.spec.cruise_speed_mps
        if speed_mps <= cruise:
            return 1.0
        overshoot = (speed_mps - cruise) / cruise
        return 1.0 + self.SPEED_PENALTY * overshoot * overshoot

    def brownout(self, drop_fraction: float) -> float:
        """Instantly lose a fraction of the *remaining* charge.

        Models cell sag or a damaged pack (the ``battery_brownout``
        fault kind).  Returns the charge-seconds lost.  Unlike
        :meth:`consume`, a brownout never raises — a drop_fraction of
        1.0 leaves the battery exactly empty for the caller to notice.
        """
        if not 0.0 < drop_fraction <= 1.0:
            raise ValueError("drop_fraction must be a fraction in (0, 1]")
        lost = self._remaining_s * drop_fraction
        self._remaining_s -= lost
        return lost

    def consume(self, duration_s: float, speed_mps: float = 0.0, hovering: bool = False) -> None:
        """Drain the battery for ``duration_s`` seconds of flight.

        Raises :class:`BatteryDepleted` if the battery empties during the
        interval (the charge is clamped at zero first so callers can
        inspect the final state).
        """
        if duration_s < 0:
            raise ValueError("duration_s must be non-negative")
        cost = duration_s * self.drain_rate(speed_mps, hovering)
        self._remaining_s -= cost
        if self._remaining_s < 0.0:
            self._remaining_s = 0.0
            raise BatteryDepleted(
                f"{self.spec.name} battery depleted after drawing {cost:.1f}s"
            )
