"""UAV platform specifications (Table 1 of the paper).

Two heterogeneous flying platforms are modelled:

* the *Swinglet* fixed-wing airplane — fast, light, long endurance, but
  unable to hover (it loiters in circles of >= 20 m radius), and
* the *Arducopter* quadrocopter — slower and heavier, but able to hover.

The failure rate used by the delayed-gratification model is derived
from these specs: ``rho = 1 / (battery_autonomy * cruise_speed)``, the
inverse of the distance the platform can cover on a full battery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["PlatformSpec", "AIRPLANE", "QUADROCOPTER", "PLATFORMS", "get_platform"]


@dataclass(frozen=True)
class PlatformSpec:
    """Static characteristics of a flying platform (paper Table 1)."""

    name: str
    can_hover: bool
    #: Human-readable size description (wingspan / frame).
    size_description: str
    weight_kg: float
    battery_autonomy_s: float
    cruise_speed_mps: float
    max_safe_altitude_m: float
    #: Airplanes cannot stop; they loiter on a circle of this radius.
    min_turn_radius_m: float = 0.0
    #: Simple kinematic limit used by the point-mass dynamics.
    max_speed_mps: float = 0.0
    max_acceleration_mps2: float = 3.0
    climb_rate_mps: float = 2.0

    def __post_init__(self) -> None:
        if self.weight_kg <= 0:
            raise ValueError("weight_kg must be positive")
        if self.battery_autonomy_s <= 0:
            raise ValueError("battery_autonomy_s must be positive")
        if self.cruise_speed_mps <= 0:
            raise ValueError("cruise_speed_mps must be positive")
        if self.max_safe_altitude_m <= 0:
            raise ValueError("max_safe_altitude_m must be positive")
        if self.max_speed_mps and self.max_speed_mps < self.cruise_speed_mps:
            raise ValueError("max_speed_mps must be >= cruise_speed_mps")
        if not self.can_hover and self.min_turn_radius_m <= 0:
            raise ValueError("non-hovering platforms need a positive turn radius")

    @property
    def battery_range_m(self) -> float:
        """Distance coverable at cruise speed on a full battery."""
        return self.battery_autonomy_s * self.cruise_speed_mps

    @property
    def nominal_failure_rate_per_m(self) -> float:
        """The paper's rho: inverse of the full-battery range (per metre)."""
        return 1.0 / self.battery_range_m


#: The Swinglet fixed-wing platform (paper Table 1, left column).
AIRPLANE = PlatformSpec(
    name="airplane",
    can_hover=False,
    size_description="Wingspan: 80 cm",
    weight_kg=0.5,
    battery_autonomy_s=30 * 60.0,
    cruise_speed_mps=10.0,
    max_safe_altitude_m=300.0,
    min_turn_radius_m=20.0,
    max_speed_mps=20.0,
    max_acceleration_mps2=2.0,
    climb_rate_mps=3.0,
)

#: The Arducopter quadrocopter platform (paper Table 1, right column).
QUADROCOPTER = PlatformSpec(
    name="quadrocopter",
    can_hover=True,
    size_description="Frame: 64 cm by 64 cm",
    weight_kg=1.7,
    battery_autonomy_s=20 * 60.0,
    cruise_speed_mps=4.5,
    max_safe_altitude_m=100.0,
    min_turn_radius_m=0.0,
    max_speed_mps=15.0,
    max_acceleration_mps2=3.0,
    climb_rate_mps=2.0,
)

PLATFORMS: Dict[str, PlatformSpec] = {
    AIRPLANE.name: AIRPLANE,
    QUADROCOPTER.name: QUADROCOPTER,
}


def get_platform(name: str) -> PlatformSpec:
    """Look up a platform by name ('airplane' or 'quadrocopter')."""
    try:
        return PLATFORMS[name]
    except KeyError:
        raise KeyError(
            f"unknown platform {name!r}; available: {sorted(PLATFORMS)}"
        ) from None
