"""Waypoint-following autopilot and the UAV aggregate object.

The autopilot reproduces the behaviour described in Section 3 of the
paper: UAVs navigate autonomously through a waypoint list; on reaching a
waypoint a quadrocopter hovers while an airplane loiters on a circle of
at least 20 m radius.  A :class:`Uav` bundles platform spec, dynamics,
battery, autopilot and trace recording, and is advanced on a fixed tick
by the simulation.
"""

from __future__ import annotations

import math
from enum import Enum
from typing import List, Optional, Sequence

from ..geo.coords import EnuPoint
from ..geo.trajectory import Trace, Waypoint
from .battery import Battery, BatteryDepleted
from .dynamics import PointMassDynamics, PointMassState
from .platform import PlatformSpec

__all__ = ["AutopilotMode", "Autopilot", "Uav"]


class AutopilotMode(Enum):
    """What the autopilot is currently doing."""

    IDLE = "idle"
    ENROUTE = "enroute"
    HOLD = "hold"
    DONE = "done"


class Autopilot:
    """Drives a :class:`PointMassDynamics` through a waypoint list."""

    def __init__(self, dynamics: PointMassDynamics) -> None:
        self._dynamics = dynamics
        self._waypoints: List[Waypoint] = []
        self._index = 0
        self._hold_remaining = 0.0
        self.mode = AutopilotMode.IDLE

    # ------------------------------------------------------------------
    @property
    def current_waypoint(self) -> Optional[Waypoint]:
        """The waypoint currently being pursued or held at."""
        if self._index < len(self._waypoints):
            return self._waypoints[self._index]
        return None

    @property
    def mission_complete(self) -> bool:
        """True once every waypoint has been visited and held."""
        return self.mode == AutopilotMode.DONE

    def load_mission(self, waypoints: Sequence[Waypoint]) -> None:
        """Replace the waypoint list and restart navigation."""
        self._waypoints = list(waypoints)
        self._index = 0
        self._hold_remaining = 0.0
        self.mode = AutopilotMode.ENROUTE if self._waypoints else AutopilotMode.DONE

    def append_waypoint(self, waypoint: Waypoint) -> None:
        """Add a waypoint to the end of the mission."""
        self._waypoints.append(waypoint)
        if self.mode in (AutopilotMode.IDLE, AutopilotMode.DONE):
            self.mode = AutopilotMode.ENROUTE

    def divert(self, waypoint: Waypoint) -> None:
        """Immediately abandon the current leg for ``waypoint``.

        Used by the central planner to send a UAV to a rendezvous point;
        remaining waypoints are preserved after the diversion.
        """
        self._waypoints.insert(self._index, waypoint)
        self._hold_remaining = 0.0
        self.mode = AutopilotMode.ENROUTE

    # ------------------------------------------------------------------
    def tick(self, dt: float) -> float:
        """Advance the vehicle ``dt`` seconds; returns distance flown."""
        if dt <= 0:
            return 0.0
        wp = self.current_waypoint
        if wp is None:
            self.mode = AutopilotMode.DONE
            return self._idle_motion(dt)

        if self.mode == AutopilotMode.HOLD:
            self._hold_remaining -= dt
            flown = self._hold_motion(wp, dt)
            if self._hold_remaining <= 0:
                self._index += 1
                self.mode = (
                    AutopilotMode.ENROUTE
                    if self.current_waypoint is not None
                    else AutopilotMode.DONE
                )
            return flown

        # ENROUTE leg
        flown = self._dynamics.advance_towards(wp.position, dt, wp.speed_mps)
        if (
            self._dynamics.state.position.distance_to(wp.position)
            <= wp.acceptance_radius_m
        ):
            if wp.hold_s > 0:
                self.mode = AutopilotMode.HOLD
                self._hold_remaining = wp.hold_s
            else:
                self._index += 1
                if self.current_waypoint is None:
                    self.mode = AutopilotMode.DONE
        return flown

    def _hold_motion(self, wp: Waypoint, dt: float) -> float:
        if self._dynamics.spec.can_hover:
            return self._dynamics.advance_hover(dt)
        return self._dynamics.advance_loiter(
            wp.position, self._dynamics.spec.min_turn_radius_m, dt
        )

    def _idle_motion(self, dt: float) -> float:
        # With no mission, rotorcraft hover in place; airplanes must keep
        # airspeed, so they loiter where they are.
        if self._dynamics.spec.can_hover:
            return self._dynamics.advance_hover(dt)
        return self._dynamics.advance_loiter(
            self._dynamics.state.position, self._dynamics.spec.min_turn_radius_m, dt
        )


class Uav:
    """One simulated vehicle: spec + dynamics + battery + autopilot + trace."""

    def __init__(
        self,
        name: str,
        spec: PlatformSpec,
        position: EnuPoint,
        heading_rad: float = 0.0,
        charge_fraction: float = 1.0,
    ) -> None:
        self.name = name
        self.spec = spec
        self.state = PointMassState(position, heading_rad=heading_rad)
        self.dynamics = PointMassDynamics(spec, self.state)
        self.battery = Battery(spec, charge_fraction)
        self.autopilot = Autopilot(self.dynamics)
        self.trace = Trace(name)
        self.alive = True
        self.distance_flown_m = 0.0

    # ------------------------------------------------------------------
    @property
    def position(self) -> EnuPoint:
        """Current true position."""
        return self.state.position

    @property
    def speed_mps(self) -> float:
        """Current airspeed."""
        return self.state.speed_mps

    def distance_to(self, other: "Uav") -> float:
        """3-D separation from another UAV in metres."""
        return self.position.distance_to(other.position)

    @property
    def is_holding(self) -> bool:
        """True while hovering/loitering at a waypoint (or idle)."""
        return self.autopilot.mode in (AutopilotMode.HOLD, AutopilotMode.IDLE,
                                       AutopilotMode.DONE)

    # ------------------------------------------------------------------
    def tick(self, now_s: float, dt: float, record_trace: bool = True) -> None:
        """Advance the vehicle by ``dt`` seconds of flight.

        Battery depletion marks the UAV dead but does not raise, so a
        campaign can carry on with the surviving vehicles.
        """
        if not self.alive:
            return
        flown = self.autopilot.tick(dt)
        self.distance_flown_m += flown
        hovering = self.spec.can_hover and self.state.speed_mps < 0.1
        try:
            self.battery.consume(dt, self.state.speed_mps, hovering)
        except BatteryDepleted:
            self.alive = False
        if record_trace:
            self.trace.record(now_s + dt, self.position, self.state.speed_mps)

    def estimated_travel_time_s(self, target: EnuPoint, speed: Optional[float] = None) -> float:
        """Straight-line travel time estimate used by planners."""
        v = self.dynamics.clamp_speed(
            self.spec.cruise_speed_mps if speed is None else speed
        )
        return self.position.distance_to(target) / v

    def heading_to(self, target: EnuPoint) -> float:
        """Bearing (rad) from the current position towards ``target``."""
        return math.atan2(
            target.east_m - self.position.east_m,
            target.north_m - self.position.north_m,
        )
