"""Point-mass UAV kinematics.

The model the paper needs from the vehicle is modest — positions,
speeds and travel times — so a point-mass integrator with a speed
limit, linear acceleration, and a climb-rate limit is adequate.
Fixed-wing platforms additionally refuse to fly slower than a stall
fraction of cruise speed and turn along circular arcs (used to loiter).
"""

from __future__ import annotations

import math
from typing import Optional

from ..geo.coords import EnuPoint
from .platform import PlatformSpec

__all__ = ["PointMassState", "PointMassDynamics"]


class PointMassState:
    """Mutable kinematic state: position, heading (rad) and speed (m/s)."""

    def __init__(
        self,
        position: EnuPoint,
        heading_rad: float = 0.0,
        speed_mps: float = 0.0,
    ) -> None:
        self.position = position
        self.heading_rad = heading_rad
        self.speed_mps = speed_mps

    def copy(self) -> "PointMassState":
        """A detached copy of this state."""
        return PointMassState(self.position, self.heading_rad, self.speed_mps)


class PointMassDynamics:
    """Integrates a UAV state towards commanded targets.

    All methods advance the state *in place* by ``dt`` seconds and
    return the distance flown, which the battery model consumes.
    """

    #: Fixed-wing aircraft cannot fly below this fraction of cruise speed.
    STALL_FRACTION = 0.6

    def __init__(self, spec: PlatformSpec, state: PointMassState) -> None:
        self.spec = spec
        self.state = state

    # ------------------------------------------------------------------
    def min_speed(self) -> float:
        """Lowest sustainable airspeed for the platform."""
        if self.spec.can_hover:
            return 0.0
        return self.STALL_FRACTION * self.spec.cruise_speed_mps

    def clamp_speed(self, requested: float) -> float:
        """Limit a commanded speed to the platform's envelope."""
        max_speed = self.spec.max_speed_mps or self.spec.cruise_speed_mps
        return min(max(requested, self.min_speed()), max_speed)

    # ------------------------------------------------------------------
    def advance_towards(
        self,
        target: EnuPoint,
        dt: float,
        commanded_speed: Optional[float] = None,
    ) -> float:
        """Fly straight towards ``target`` for ``dt`` seconds.

        Speed ramps linearly (bounded by ``max_acceleration_mps2``)
        towards the commanded speed; vertical motion is capped by the
        climb rate.  Returns the ground distance covered.
        """
        if dt <= 0:
            return 0.0
        state = self.state
        speed_cmd = self.clamp_speed(
            self.spec.cruise_speed_mps if commanded_speed is None else commanded_speed
        )
        # Accelerate / decelerate towards the commanded speed.
        dv = speed_cmd - state.speed_mps
        max_dv = self.spec.max_acceleration_mps2 * dt
        state.speed_mps += max(-max_dv, min(max_dv, dv))

        pos = state.position
        de = target.east_m - pos.east_m
        dn = target.north_m - pos.north_m
        du = target.up_m - pos.up_m
        horizontal = math.hypot(de, dn)
        step = state.speed_mps * dt

        if horizontal > 1e-9:
            state.heading_rad = math.atan2(de, dn)
        move = min(step, horizontal)
        frac = 0.0 if horizontal <= 1e-9 else move / horizontal
        climb = max(-self.spec.climb_rate_mps * dt, min(self.spec.climb_rate_mps * dt, du))
        state.position = EnuPoint(
            pos.east_m + de * frac, pos.north_m + dn * frac, pos.up_m + climb
        )
        return move

    def advance_hover(self, dt: float) -> float:
        """Hold position for ``dt`` seconds (hovering platforms only)."""
        if not self.spec.can_hover:
            raise ValueError(f"{self.spec.name} cannot hover")
        self.state.speed_mps = 0.0
        return 0.0

    def advance_loiter(
        self,
        center: EnuPoint,
        radius_m: float,
        dt: float,
        speed: Optional[float] = None,
    ) -> float:
        """Circle around ``center`` at ``radius_m`` for ``dt`` seconds.

        This is how fixed-wing platforms "hover": the paper's Swinglets
        circle a waypoint with a radius of at least 20 m.  Returns the
        arc length flown.
        """
        radius = max(radius_m, self.spec.min_turn_radius_m or radius_m)
        if radius <= 0:
            raise ValueError("loiter radius must be positive")
        state = self.state
        v = self.clamp_speed(self.spec.cruise_speed_mps if speed is None else speed)
        state.speed_mps = v
        pos = state.position
        de = pos.east_m - center.east_m
        dn = pos.north_m - center.north_m
        r_now = math.hypot(de, dn)
        if r_now < 1e-6:
            # Degenerate start at the centre: jump onto the circle eastward.
            de, dn, r_now = radius, 0.0, radius
        angle_now = math.atan2(dn, de)
        # Advance along the circle by the flown arc (counter-clockwise).
        arc = v * dt
        angle_new = angle_now + arc / radius
        # Blend radial error towards the commanded radius.
        r_new = radius + (r_now - radius) * math.exp(-dt)
        state.position = EnuPoint(
            center.east_m + r_new * math.cos(angle_new),
            center.north_m + r_new * math.sin(angle_new),
            pos.up_m + max(
                -self.spec.climb_rate_mps * dt,
                min(self.spec.climb_rate_mps * dt, center.up_m - pos.up_m),
            ),
        )
        state.heading_rad = angle_new + math.pi / 2.0
        return arc
