"""UAV platforms, kinematics, batteries, and autopilot navigation."""

from .autopilot import Autopilot, AutopilotMode, Uav
from .battery import Battery, BatteryDepleted
from .dynamics import PointMassDynamics, PointMassState
from .platform import AIRPLANE, PLATFORMS, QUADROCOPTER, PlatformSpec, get_platform

__all__ = [
    "Autopilot",
    "AutopilotMode",
    "Uav",
    "Battery",
    "BatteryDepleted",
    "PointMassDynamics",
    "PointMassState",
    "AIRPLANE",
    "PLATFORMS",
    "QUADROCOPTER",
    "PlatformSpec",
    "get_platform",
]
