"""Terminal rendering of experiment figures (line plots, boxplots)."""

from .ascii import box_plot, line_plot, sparkline

__all__ = ["box_plot", "line_plot", "sparkline"]
