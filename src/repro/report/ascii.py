"""Terminal plotting: line charts and boxplots in plain ASCII.

The benchmark harness runs in environments without a display, yet the
paper's figures are curves and boxplots.  These renderers draw them as
text so every experiment report can *show* its figure, not just list
numbers.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

import numpy as np

from ..sim.monitor import SummaryStats

__all__ = ["line_plot", "box_plot", "sparkline"]

_MARKERS = "ox+*#@%&"
_SPARK_LEVELS = " .:-=+*#%@"


def sparkline(values: Sequence[float], width: int = 40) -> str:
    """A one-line intensity strip of ``values`` resampled to ``width``."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        return ""
    if width < 1:
        raise ValueError("width must be >= 1")
    resampled = np.interp(
        np.linspace(0, data.size - 1, width), np.arange(data.size), data
    )
    lo, hi = float(resampled.min()), float(resampled.max())
    span = hi - lo
    chars = []
    for v in resampled:
        level = 0 if span <= 0 else int((v - lo) / span * (len(_SPARK_LEVELS) - 1))
        chars.append(_SPARK_LEVELS[level])
    return "".join(chars)


def line_plot(
    x: Sequence[float],
    series: Mapping[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    x_label: str = "",
    y_label: str = "",
) -> List[str]:
    """Render one or more y(x) series on a shared character canvas.

    Returns the plot as a list of text lines (no trailing newline),
    with a legend mapping markers to series names.
    """
    xs = np.asarray(list(x), dtype=float)
    if xs.size < 2:
        raise ValueError("need at least two x points")
    if width < 8 or height < 4:
        raise ValueError("canvas too small")
    ys = {name: np.asarray(list(v), dtype=float) for name, v in series.items()}
    for name, arr in ys.items():
        if arr.shape != xs.shape:
            raise ValueError(f"series {name!r} length mismatch")
    if not ys:
        raise ValueError("no series given")

    y_all = np.concatenate(list(ys.values()))
    y_lo, y_hi = float(y_all.min()), float(y_all.max())
    if y_hi - y_lo <= 0:
        y_hi = y_lo + 1.0
    x_lo, x_hi = float(xs.min()), float(xs.max())

    canvas = [[" "] * width for _ in range(height)]
    for k, (name, arr) in enumerate(ys.items()):
        marker = _MARKERS[k % len(_MARKERS)]
        for xv, yv in zip(xs, arr):
            col = int(round((xv - x_lo) / (x_hi - x_lo) * (width - 1)))
            row = int(round((yv - y_lo) / (y_hi - y_lo) * (height - 1)))
            canvas[height - 1 - row][col] = marker

    lines: List[str] = []
    if y_label:
        lines.append(y_label)
    for i, row in enumerate(canvas):
        if i == 0:
            label = f"{y_hi:8.3g} |"
        elif i == height - 1:
            label = f"{y_lo:8.3g} |"
        else:
            label = " " * 8 + " |"
        lines.append(label + "".join(row))
    lines.append(" " * 9 + "+" + "-" * (width - 1))
    left = f"{x_lo:g}"
    right = f"{x_hi:g}"
    pad = max(1, width - len(left) - len(right))
    lines.append(" " * 10 + left + " " * pad + right)
    if x_label:
        lines.append(" " * 10 + x_label.center(width))
    legend = "   ".join(
        f"{_MARKERS[k % len(_MARKERS)]} {name}" for k, name in enumerate(ys)
    )
    lines.append("legend: " + legend)
    return lines


def box_plot(
    stats_by_key: Mapping[float, SummaryStats],
    width: int = 60,
    value_format: str = "{:.0f}",
) -> List[str]:
    """Render horizontal boxplots, one row per key.

    Layout per row: ``key |----[ Q1 | median | Q3 ]----|`` scaled to a
    shared axis spanning all whiskers.
    """
    if not stats_by_key:
        raise ValueError("no statistics given")
    if width < 20:
        raise ValueError("width must be >= 20")
    lo = min(s.whisker_low for s in stats_by_key.values())
    hi = max(s.whisker_high for s in stats_by_key.values())
    if hi - lo <= 0:
        hi = lo + 1.0

    def col(value: float) -> int:
        return int(round((value - lo) / (hi - lo) * (width - 1)))

    lines: List[str] = []
    for key in sorted(stats_by_key):
        stats = stats_by_key[key]
        row = [" "] * width
        for i in range(col(stats.whisker_low), col(stats.whisker_high) + 1):
            row[i] = "-"
        for i in range(col(stats.q1), col(stats.q3) + 1):
            row[i] = "="
        row[col(stats.whisker_low)] = "|"
        row[col(stats.whisker_high)] = "|"
        row[col(stats.median)] = "#"
        label = value_format.format(key)
        lines.append(f"{label:>8} {''.join(row)}")
    lines.append(
        f"{'':>8} {'':{width}}".rstrip()
    )
    lines.append(f"{'':>9}{lo:.3g}{'':>{max(1, width - 14)}}{hi:.3g}")
    lines.append("          (| whisker, = IQR, # median)")
    return lines
