"""End-to-end search-and-rescue mission simulation.

The full loop the paper motivates: a sensing UAV sweeps its sector
collecting imagery, then ferries the batch to a hovering relay UAV and
transmits over the simulated 802.11n link; an in-flight failure may end
the mission.  Three delivery policies are compared:

* ``"optimal"`` — the paper's contribution: ship to ``dopt`` solving
  Eq. 2, then hover and transmit.
* ``"immediate"`` — transmit from wherever the sweep ended (the
  'transmit as soon as possible' temptation).
* ``"closest"`` — always close to the safety floor first (pure delay
  minimisation, ignoring the failure risk).

Each episode reports the communication delay and the delivered
fraction, so the delayed-gratification tradeoff can be evaluated on the
full simulated system rather than on the analytic model alone.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..airframe.autopilot import Uav
from ..channel.channel import AerialChannel
from ..core.mission import CameraModel
from ..core.optimizer import OptimalDecision
from ..core.planner import RendezvousPlanner
from ..core.scenario import Scenario, quadrocopter_scenario
from ..geo.coords import EnuPoint
from ..geo.trajectory import Waypoint
from ..net.link import WirelessLink
from ..net.packets import ImageBatch
from ..phy.rate_control import ArfController
from ..sim.random import RandomStreams
from .lawnmower import lawnmower_waypoints, strip_width_m

__all__ = ["EpisodeResult", "MissionSummary", "SarMissionSim", "POLICIES"]

POLICIES = ("optimal", "immediate", "closest")


@dataclass(frozen=True)
class EpisodeResult:
    """Outcome of one scan-and-deliver episode."""

    policy: str
    scan_time_s: float
    communication_delay_s: Optional[float]
    delivered_fraction: float
    failed: bool
    transmit_distance_m: Optional[float]
    battery_used_fraction: float


@dataclass
class MissionSummary:
    """Aggregate over many episodes of one policy."""

    policy: str
    episodes: List[EpisodeResult] = field(default_factory=list)

    @property
    def n_episodes(self) -> int:
        """Number of completed episodes."""
        return len(self.episodes)

    @property
    def mean_delivered_fraction(self) -> float:
        """Average fraction of each batch that reached the relay."""
        return float(np.mean([e.delivered_fraction for e in self.episodes]))

    @property
    def mean_communication_delay_s(self) -> float:
        """Mean delay among episodes that finished delivery."""
        done = [
            e.communication_delay_s
            for e in self.episodes
            if e.communication_delay_s is not None
        ]
        return float(np.mean(done)) if done else float("nan")

    @property
    def failure_rate(self) -> float:
        """Fraction of episodes ending in a crash."""
        return float(np.mean([e.failed for e in self.episodes]))

    @property
    def mean_realized_utility(self) -> float:
        """Empirical counterpart of the paper's U: E[fraction / delay].

        Failed or unfinished episodes contribute zero, mirroring the
        discount term of Eq. 1.
        """
        values = []
        for e in self.episodes:
            if e.communication_delay_s and e.communication_delay_s > 0:
                values.append(e.delivered_fraction / e.communication_delay_s)
            else:
                values.append(0.0)
        return float(np.mean(values))


class SarMissionSim:
    """Simulates scan-and-deliver episodes under a chosen policy."""

    def __init__(
        self,
        scenario: Optional[Scenario] = None,
        seed: int = 0,
        sector_side_m: float = 100.0,
        relay_position: Optional[EnuPoint] = None,
        tick_s: float = 0.1,
        failure_rate_per_m: Optional[float] = None,
    ) -> None:
        self.scenario = scenario if scenario is not None else quadrocopter_scenario()
        self.seed = seed
        self.sector_side_m = sector_side_m
        self.altitude_m = min(
            self.scenario.mission.altitude_m,
            self.scenario.platform.max_safe_altitude_m,
        )
        self.relay_position = (
            relay_position
            if relay_position is not None
            else EnuPoint(0.0, 0.0, self.altitude_m)
        )
        self.tick_s = tick_s
        self.failure_rate_per_m = (
            failure_rate_per_m
            if failure_rate_per_m is not None
            else self.scenario.failure_rate_per_m
        )
        # The planner must optimise against the hazard actually in force.
        self._planner = RendezvousPlanner(
            self.scenario.with_failure_rate(self.failure_rate_per_m)
        )

    # ------------------------------------------------------------------
    def run(self, policy: str, n_episodes: int = 10) -> MissionSummary:
        """Run ``n_episodes`` scan-and-deliver cycles under ``policy``."""
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}; choose from {POLICIES}")
        summary = MissionSummary(policy)
        for episode in range(n_episodes):
            streams = RandomStreams(self.seed).fork(episode + 1)
            summary.episodes.append(self._episode(policy, streams))
        return summary

    # ------------------------------------------------------------------
    def _episode(self, policy: str, streams: RandomStreams) -> EpisodeResult:
        rng = streams.get("mission.failures")
        sensor = Uav(
            "sensor",
            self.scenario.platform,
            EnuPoint(
                self.relay_position.east_m + self.scenario.contact_distance_m,
                self.relay_position.north_m + 30.0,
                self.altitude_m,
            ),
        )
        camera: CameraModel = self.scenario.mission.camera
        strip = strip_width_m(camera, self.altitude_m)
        sweep = lawnmower_waypoints(
            EnuPoint(
                sensor.position.east_m,
                sensor.position.north_m,
                self.altitude_m,
            ),
            self.sector_side_m,
            self.sector_side_m,
            self.altitude_m,
            strip,
        )
        sensor.autopilot.load_mission(sweep)

        now = 0.0
        # Phase 1: scan the sector.  The paper's hazard model covers the
        # *delivery* flight (the delta(d) discount), so the sweep itself
        # is not subject to the per-metre failure draw.
        while not sensor.autopilot.mission_complete and sensor.alive:
            sensor.tick(now, self.tick_s, record_trace=False)
            now += self.tick_s
            if now > 3600.0:
                break
        scan_time = now

        batch = ImageBatch(0, int(self.scenario.data_bits / 8))

        # Phase 2: pick the transmit distance per policy.
        d_now = max(
            sensor.position.distance_to(self.relay_position),
            self.scenario.min_distance_m,
        )
        if policy == "optimal":
            plan = self._planner.plan(
                sensor.position, self.relay_position, self.scenario.data_bits
            )
            target_d = plan.decision.distance_m
        elif policy == "closest":
            target_d = self.scenario.min_distance_m
        else:  # immediate
            target_d = min(d_now, self.scenario.contact_distance_m)

        # Phase 3: ship silently, then hover and transmit over the link.
        channel = AerialChannel(
            self.scenario_channel_profile(), streams, stream_name="mission"
        )
        link = WirelessLink(channel, ArfController(), streams=streams,
                            stream_name="mission.link")
        target_point = self._point_at_distance(sensor.position, target_d)
        sensor.autopilot.load_mission(
            [Waypoint(target_point, acceptance_radius_m=3.0)]
        )
        flown_before = sensor.distance_flown_m
        while not sensor.autopilot.mission_complete and sensor.alive:
            sensor.tick(now, self.tick_s, record_trace=False)
            now += self.tick_s
            if self._failure_strikes(rng, sensor, flown_before):
                return EpisodeResult(
                    policy, scan_time, None, 0.0, True,
                    target_d, 1.0 - sensor.battery.fraction,
                )
            if now - scan_time > 600.0:
                break

        transfer_start = now
        while not batch.complete and now - transfer_start < 600.0:
            distance = max(
                sensor.position.distance_to(self.relay_position),
                self.scenario.min_distance_m,
            )
            step = link.step(
                now,
                distance_m=distance,
                relative_speed_mps=0.0,
                duration_s=self.tick_s,
                backlog_bytes=batch.remaining_bytes,
            )
            batch.deliver(step.bytes_delivered)
            sensor.tick(now, self.tick_s, record_trace=False)
            now += self.tick_s
            if not sensor.alive:
                break

        comm_delay = now - scan_time if batch.complete else None
        return EpisodeResult(
            policy=policy,
            scan_time_s=scan_time,
            communication_delay_s=comm_delay,
            delivered_fraction=batch.delivered_fraction,
            failed=not sensor.alive,
            transmit_distance_m=target_d,
            battery_used_fraction=1.0 - sensor.battery.fraction,
        )

    # ------------------------------------------------------------------
    def scenario_channel_profile(self):
        """Channel profile matching the scenario's platform."""
        from ..channel.channel import airplane_profile, quadrocopter_profile

        if self.scenario.platform.can_hover:
            return quadrocopter_profile()
        return airplane_profile()

    def _point_at_distance(self, frm: EnuPoint, distance_m: float) -> EnuPoint:
        """The point towards the relay at ``distance_m`` from it."""
        total = frm.distance_to(self.relay_position)
        if total <= distance_m:
            return frm
        frac = distance_m / total
        r = self.relay_position
        return EnuPoint(
            r.east_m + (frm.east_m - r.east_m) * frac,
            r.north_m + (frm.north_m - r.north_m) * frac,
            r.up_m + (frm.up_m - r.up_m) * frac,
        )

    def _failure_strikes(
        self, rng: np.random.Generator, uav: Uav, flown_before: float
    ) -> bool:
        """Bernoulli failure per tick from the per-metre hazard."""
        flown_this_tick = uav.speed_mps * self.tick_s
        p_fail = 1.0 - math.exp(-self.failure_rate_per_m * flown_this_tick)
        if rng.random() < p_fail:
            uav.alive = False
            return True
        return False
