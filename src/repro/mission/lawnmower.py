"""Lawnmower (boustrophedon) coverage paths for sector scanning.

The sensing UAV sweeps its sector in parallel strips whose width equals
the image footprint's short side, guaranteeing full coverage — the
"path close to optimal for its sensing task" leg of the paper's
three-way tradeoff.
"""

from __future__ import annotations

import math
from typing import List

from ..core.mission import CameraModel
from ..geo.coords import EnuPoint
from ..geo.trajectory import Waypoint

__all__ = ["lawnmower_waypoints", "strip_width_m"]


def strip_width_m(camera: CameraModel, altitude_m: float) -> float:
    """Width of one sweep strip: the image footprint's short side."""
    fov = camera.fov_m(altitude_m)
    k = camera.aspect_ratio
    return fov / math.sqrt(k * k + 1.0)


def lawnmower_waypoints(
    origin: EnuPoint,
    width_m: float,
    height_m: float,
    altitude_m: float,
    strip_m: float,
    speed_mps: float | None = None,
) -> List[Waypoint]:
    """Boustrophedon sweep of the rectangle anchored at ``origin``.

    ``origin`` is the south-west corner; strips run west-east, advancing
    north by ``strip_m`` per pass.
    """
    if width_m <= 0 or height_m <= 0:
        raise ValueError("sector dimensions must be positive")
    if strip_m <= 0:
        raise ValueError("strip width must be positive")
    waypoints: List[Waypoint] = []
    n_strips = max(1, math.ceil(height_m / strip_m))
    for i in range(n_strips):
        north = origin.north_m + min(height_m, (i + 0.5) * strip_m)
        west = EnuPoint(origin.east_m, north, altitude_m)
        east = EnuPoint(origin.east_m + width_m, north, altitude_m)
        if i % 2 == 0:
            waypoints.extend(
                [Waypoint(west, speed_mps=speed_mps),
                 Waypoint(east, speed_mps=speed_mps)]
            )
        else:
            waypoints.extend(
                [Waypoint(east, speed_mps=speed_mps),
                 Waypoint(west, speed_mps=speed_mps)]
            )
    return waypoints
