"""Ferry chains: store-carry-forward delivery across heterogeneous UAVs.

The paper's related-work discussion places delayed gratification in
the store-carry-forward / DTN tradition ("any mission-oriented UAV can
become a ferry").  This module chains the single-link model across two
*heterogeneous* platforms: a slow sensing quadrocopter may hand its
batch to a fast fixed-wing ferry that covers the long leg to the
ground station — each hop solving its own Eq. 2 with its own platform
parameters and throughput law.

The analysis answers a planning question the single-link model cannot:
*when is relaying through a ferry faster than flying the whole way
yourself?*  A second transmission costs one extra ``Ttx``; the ferry
pays it back by covering the silent leg at a higher cruise speed (and,
with the airplane's flatter throughput law, often a faster ``Ttx``
too).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

from ..core.optimizer import OptimalDecision
from ..core.scenario import (
    Scenario,
    airplane_scenario,
    quadrocopter_scenario,
)
from ..geo.coords import EnuPoint
from ..net.link import WirelessLink
from ..net.packets import ImageBatch
from ..net.retry import RetryPolicy
from ..net.udp import TransferStalled, UdpTransfer

__all__ = [
    "HopPlan",
    "FerryPlan",
    "FerryChainPlanner",
    "TransferCheckpoint",
    "ResumableTransferReport",
    "ResumableFerryTransfer",
]


@dataclass(frozen=True)
class HopPlan:
    """One hop of a ferry chain: carrier flies, then transmits."""

    carrier: str
    from_position: EnuPoint
    to_position: EnuPoint
    decision: OptimalDecision
    #: Out-of-range distance the carrier covers in radio silence before
    #: the single-link problem starts.
    silent_m: float = 0.0

    @property
    def hop_delay_s(self) -> float:
        """Cdelay of this hop (silent ferrying + ship + transmit)."""
        return self.decision.cdelay_s

    @property
    def hop_survival(self) -> float:
        """Survival probability of this hop's flying portion."""
        return self.decision.discount


@dataclass(frozen=True)
class FerryPlan:
    """A complete multi-hop delivery plan."""

    name: str
    hops: List[HopPlan]

    @property
    def total_delay_s(self) -> float:
        """End-to-end communication delay (hops are sequential)."""
        return sum(h.hop_delay_s for h in self.hops)

    @property
    def total_survival(self) -> float:
        """Probability every hop's carrier survives its flying."""
        p = 1.0
        for hop in self.hops:
            p *= hop.hop_survival
        return p

    @property
    def utility(self) -> float:
        """Chain analogue of Eq. 1: survival / total delay."""
        return self.total_survival / self.total_delay_s


def _fold_silent_leg(
    scenario: Scenario, decision: OptimalDecision, silent_m: float
) -> OptimalDecision:
    """Add an out-of-range ferry leg to a single-link decision."""
    if silent_m <= 0:
        return decision
    silent_s = silent_m / scenario.cruise_speed_mps
    survival = scenario.failure_model().survival_probability(silent_m)
    return replace(
        decision,
        cdelay_s=decision.cdelay_s + silent_s,
        shipping_s=decision.shipping_s + silent_s,
        discount=decision.discount * survival,
    )


@dataclass(frozen=True)
class TransferCheckpoint:
    """Progress snapshot of a partially shipped ``Mdata`` batch.

    Taken whenever a transfer is interrupted (idle timeout during an
    injected blackout, node loss, operator abort) so a resume knows
    exactly where the batch stands.  ``delivered_bytes`` is cumulative
    over the whole batch lifetime — resuming from a checkpoint never
    re-ships delivered bytes and never drops undelivered ones.
    """

    batch_id: int
    total_bytes: int
    delivered_bytes: int
    time_s: float
    reason: str = "stalled"

    @property
    def remaining_bytes(self) -> int:
        """Bytes still to ship after this checkpoint."""
        return self.total_bytes - self.delivered_bytes

    @property
    def delivered_fraction(self) -> float:
        """Fraction of the batch shipped so far."""
        if self.total_bytes <= 0:
            return 0.0
        return self.delivered_bytes / self.total_bytes

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready mapping (chaos reports, CLI)."""
        return {
            "batch_id": self.batch_id,
            "total_bytes": self.total_bytes,
            "delivered_bytes": self.delivered_bytes,
            "remaining_bytes": self.remaining_bytes,
            "time_s": self.time_s,
            "reason": self.reason,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "TransferCheckpoint":
        """Inverse of :meth:`to_dict` (``remaining_bytes`` is derived)."""
        return cls(
            batch_id=int(payload["batch_id"]),
            total_bytes=int(payload["total_bytes"]),
            delivered_bytes=int(payload["delivered_bytes"]),
            time_s=float(payload["time_s"]),
            reason=str(payload.get("reason", "stalled")),
        )


@dataclass(frozen=True)
class ResumableTransferReport:
    """Outcome of a checkpoint/resume transfer run."""

    finish_s: float
    completed: bool
    delivered_bytes: int
    total_bytes: int
    resumes: int
    blackout_retries: int
    blackout_wait_s: float
    checkpoints: Tuple[TransferCheckpoint, ...] = field(default_factory=tuple)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready mapping (chaos reports, CLI)."""
        return {
            "finish_s": self.finish_s,
            "completed": self.completed,
            "delivered_bytes": self.delivered_bytes,
            "total_bytes": self.total_bytes,
            "resumes": self.resumes,
            "blackout_retries": self.blackout_retries,
            "blackout_wait_s": self.blackout_wait_s,
            "checkpoints": [c.to_dict() for c in self.checkpoints],
        }


class ResumableFerryTransfer:
    """Ships one batch to completion across interruptions.

    Wraps :class:`~repro.net.udp.UdpTransfer` in a checkpoint/resume
    loop: every :class:`~repro.net.udp.TransferStalled` (an injected
    blackout outlasting the idle timeout) snapshots progress as a
    :class:`TransferCheckpoint` and restarts the transfer — with a
    fresh backoff schedule — on the *same*
    :class:`~repro.net.packets.ImageBatch`, so delivered bytes are
    conserved exactly (no loss, no double count; the chaos suite pins
    this).
    """

    def __init__(
        self,
        link: WirelessLink,
        batch: ImageBatch,
        retry: RetryPolicy = RetryPolicy(),
        idle_timeout_s: float = 2.0,
        max_resumes: int = 8,
        record_interval_s: float = 0.1,
    ) -> None:
        if max_resumes < 0:
            raise ValueError("max_resumes must be non-negative")
        self.link = link
        self.batch = batch
        self.retry = retry
        self.idle_timeout_s = idle_timeout_s
        self.max_resumes = max_resumes
        self.record_interval_s = record_interval_s
        self.checkpoints: List[TransferCheckpoint] = []

    def run(
        self,
        start_s: float,
        distance_fn: Callable[[float], float],
        speed_fn: Optional[Callable[[float], float]] = None,
        deadline_s: Optional[float] = None,
    ) -> ResumableTransferReport:
        """Transfer with checkpoint/resume until done, dead, or out of budget."""
        now = start_s
        resumes = 0
        blackout_retries = 0
        blackout_wait_s = 0.0
        while True:
            transfer = UdpTransfer(
                self.link,
                self.batch,
                record_interval_s=self.record_interval_s,
                retry=self.retry,
                idle_timeout_s=self.idle_timeout_s,
            )
            try:
                finish = transfer.run(
                    now, distance_fn, speed_fn=speed_fn, deadline_s=deadline_s
                )
            except TransferStalled as stall:
                blackout_retries += transfer.blackout_retries
                blackout_wait_s += transfer.blackout_wait_s
                self.checkpoints.append(
                    TransferCheckpoint(
                        batch_id=self.batch.batch_id,
                        total_bytes=self.batch.total_bytes,
                        delivered_bytes=self.batch.delivered_bytes,
                        time_s=stall.at_s,
                        reason="stalled",
                    )
                )
                if resumes >= self.max_resumes:
                    return self._report(
                        stall.at_s, resumes, blackout_retries, blackout_wait_s
                    )
                resumes += 1
                now = stall.at_s
                continue
            blackout_retries += transfer.blackout_retries
            blackout_wait_s += transfer.blackout_wait_s
            return self._report(
                finish, resumes, blackout_retries, blackout_wait_s
            )

    def _report(
        self,
        finish_s: float,
        resumes: int,
        blackout_retries: int,
        blackout_wait_s: float,
    ) -> ResumableTransferReport:
        return ResumableTransferReport(
            finish_s=finish_s,
            completed=self.batch.complete,
            delivered_bytes=self.batch.delivered_bytes,
            total_bytes=self.batch.total_bytes,
            resumes=resumes,
            blackout_retries=blackout_retries,
            blackout_wait_s=blackout_wait_s,
            checkpoints=tuple(self.checkpoints),
        )


class FerryChainPlanner:
    """Plans direct vs ferried delivery to a distant ground station.

    ``sensor_scenario`` describes the data-collecting platform (by
    default the paper's quadrocopter), ``ferry_scenario`` the relay
    platform (by default the airplane).  The batch size always comes
    from the sensor's mission.
    """

    def __init__(
        self,
        sensor_scenario: Optional[Scenario] = None,
        ferry_scenario: Optional[Scenario] = None,
    ) -> None:
        self.sensor_scenario = (
            sensor_scenario if sensor_scenario is not None
            else quadrocopter_scenario()
        )
        self.ferry_scenario = (
            ferry_scenario if ferry_scenario is not None else airplane_scenario()
        )

    # ------------------------------------------------------------------
    def _hop(
        self,
        scenario: Scenario,
        carrier: str,
        frm: EnuPoint,
        to: EnuPoint,
        data_bits: float,
    ) -> HopPlan:
        distance = frm.distance_to(to)
        d0 = max(
            min(distance, scenario.contact_distance_m), scenario.min_distance_m
        )
        silent = max(0.0, distance - d0)
        # Memoised engine solve: repeated legs over the same geometry
        # (every episode of a SAR sweep) cost one cache lookup.
        decision = scenario.with_(d0_m=d0, data_bits=data_bits).solve()
        return HopPlan(
            carrier=carrier,
            from_position=frm,
            to_position=to,
            decision=_fold_silent_leg(scenario, decision, silent),
            silent_m=silent,
        )

    def direct_plan(self, sensor: EnuPoint, ground: EnuPoint) -> FerryPlan:
        """The sensor carries its own batch all the way."""
        bits = self.sensor_scenario.data_bits
        return FerryPlan(
            name="direct",
            hops=[self._hop(self.sensor_scenario, "sensor", sensor, ground, bits)],
        )

    def ferried_plan(
        self, sensor: EnuPoint, ferry: EnuPoint, ground: EnuPoint
    ) -> FerryPlan:
        """Sensor -> ferry handoff, then the ferry delivers."""
        bits = self.sensor_scenario.data_bits
        return FerryPlan(
            name="ferried",
            hops=[
                self._hop(self.sensor_scenario, "sensor", sensor, ferry, bits),
                self._hop(self.ferry_scenario, "ferry", ferry, ground, bits),
            ],
        )

    def best_plan(
        self, sensor: EnuPoint, ferry: EnuPoint, ground: EnuPoint
    ) -> FerryPlan:
        """Whichever of direct / ferried maximises the chain utility."""
        direct = self.direct_plan(sensor, ground)
        ferried = self.ferried_plan(sensor, ferry, ground)
        return max((direct, ferried), key=lambda plan: plan.utility)
