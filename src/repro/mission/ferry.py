"""Ferry chains: store-carry-forward delivery across heterogeneous UAVs.

The paper's related-work discussion places delayed gratification in
the store-carry-forward / DTN tradition ("any mission-oriented UAV can
become a ferry").  This module chains the single-link model across two
*heterogeneous* platforms: a slow sensing quadrocopter may hand its
batch to a fast fixed-wing ferry that covers the long leg to the
ground station — each hop solving its own Eq. 2 with its own platform
parameters and throughput law.

The analysis answers a planning question the single-link model cannot:
*when is relaying through a ferry faster than flying the whole way
yourself?*  A second transmission costs one extra ``Ttx``; the ferry
pays it back by covering the silent leg at a higher cruise speed (and,
with the airplane's flatter throughput law, often a faster ``Ttx``
too).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

from ..api import (
    OptimalDecision,
    Scenario,
    airplane_scenario,
    quadrocopter_scenario,
    solve,
)
from ..geo.coords import EnuPoint

__all__ = ["HopPlan", "FerryPlan", "FerryChainPlanner"]


@dataclass(frozen=True)
class HopPlan:
    """One hop of a ferry chain: carrier flies, then transmits."""

    carrier: str
    from_position: EnuPoint
    to_position: EnuPoint
    decision: OptimalDecision
    #: Out-of-range distance the carrier covers in radio silence before
    #: the single-link problem starts.
    silent_m: float = 0.0

    @property
    def hop_delay_s(self) -> float:
        """Cdelay of this hop (silent ferrying + ship + transmit)."""
        return self.decision.cdelay_s

    @property
    def hop_survival(self) -> float:
        """Survival probability of this hop's flying portion."""
        return self.decision.discount


@dataclass(frozen=True)
class FerryPlan:
    """A complete multi-hop delivery plan."""

    name: str
    hops: List[HopPlan]

    @property
    def total_delay_s(self) -> float:
        """End-to-end communication delay (hops are sequential)."""
        return sum(h.hop_delay_s for h in self.hops)

    @property
    def total_survival(self) -> float:
        """Probability every hop's carrier survives its flying."""
        p = 1.0
        for hop in self.hops:
            p *= hop.hop_survival
        return p

    @property
    def utility(self) -> float:
        """Chain analogue of Eq. 1: survival / total delay."""
        return self.total_survival / self.total_delay_s


def _fold_silent_leg(
    scenario: Scenario, decision: OptimalDecision, silent_m: float
) -> OptimalDecision:
    """Add an out-of-range ferry leg to a single-link decision."""
    if silent_m <= 0:
        return decision
    silent_s = silent_m / scenario.cruise_speed_mps
    survival = scenario.failure_model().survival_probability(silent_m)
    return replace(
        decision,
        cdelay_s=decision.cdelay_s + silent_s,
        shipping_s=decision.shipping_s + silent_s,
        discount=decision.discount * survival,
    )


class FerryChainPlanner:
    """Plans direct vs ferried delivery to a distant ground station.

    ``sensor_scenario`` describes the data-collecting platform (by
    default the paper's quadrocopter), ``ferry_scenario`` the relay
    platform (by default the airplane).  The batch size always comes
    from the sensor's mission.
    """

    def __init__(
        self,
        sensor_scenario: Optional[Scenario] = None,
        ferry_scenario: Optional[Scenario] = None,
    ) -> None:
        self.sensor_scenario = (
            sensor_scenario if sensor_scenario is not None
            else quadrocopter_scenario()
        )
        self.ferry_scenario = (
            ferry_scenario if ferry_scenario is not None else airplane_scenario()
        )

    # ------------------------------------------------------------------
    def _hop(
        self,
        scenario: Scenario,
        carrier: str,
        frm: EnuPoint,
        to: EnuPoint,
        data_bits: float,
    ) -> HopPlan:
        distance = frm.distance_to(to)
        d0 = max(
            min(distance, scenario.contact_distance_m), scenario.min_distance_m
        )
        silent = max(0.0, distance - d0)
        # Memoised engine solve: repeated legs over the same geometry
        # (every episode of a SAR sweep) cost one cache lookup.
        decision = solve(scenario.with_(d0_m=d0, data_bits=data_bits))
        return HopPlan(
            carrier=carrier,
            from_position=frm,
            to_position=to,
            decision=_fold_silent_leg(scenario, decision, silent),
            silent_m=silent,
        )

    def direct_plan(self, sensor: EnuPoint, ground: EnuPoint) -> FerryPlan:
        """The sensor carries its own batch all the way."""
        bits = self.sensor_scenario.data_bits
        return FerryPlan(
            name="direct",
            hops=[self._hop(self.sensor_scenario, "sensor", sensor, ground, bits)],
        )

    def ferried_plan(
        self, sensor: EnuPoint, ferry: EnuPoint, ground: EnuPoint
    ) -> FerryPlan:
        """Sensor -> ferry handoff, then the ferry delivers."""
        bits = self.sensor_scenario.data_bits
        return FerryPlan(
            name="ferried",
            hops=[
                self._hop(self.sensor_scenario, "sensor", sensor, ferry, bits),
                self._hop(self.ferry_scenario, "ferry", ferry, ground, bits),
            ],
        )

    def best_plan(
        self, sensor: EnuPoint, ferry: EnuPoint, ground: EnuPoint
    ) -> FerryPlan:
        """Whichever of direct / ferried maximises the chain utility."""
        direct = self.direct_plan(sensor, ground)
        ferried = self.ferried_plan(sensor, ferry, ground)
        return max((direct, ferried), key=lambda plan: plan.utility)
