"""End-to-end mission simulation: sector sweeps and delivery policies."""

from .ferry import (
    FerryChainPlanner,
    FerryPlan,
    HopPlan,
    ResumableFerryTransfer,
    ResumableTransferReport,
    TransferCheckpoint,
)
from .lawnmower import lawnmower_waypoints, strip_width_m
from .sar import POLICIES, EpisodeResult, MissionSummary, SarMissionSim

__all__ = [
    "FerryChainPlanner",
    "FerryPlan",
    "HopPlan",
    "ResumableFerryTransfer",
    "ResumableTransferReport",
    "TransferCheckpoint",
    "lawnmower_waypoints",
    "strip_width_m",
    "POLICIES",
    "EpisodeResult",
    "MissionSummary",
    "SarMissionSim",
]
