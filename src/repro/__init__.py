"""repro — reproduction of "Now or Later? Delaying Data Transfer in
Time-Critical Aerial Communication" (Asadpour et al., CoNEXT 2013).

The package is organised bottom-up:

* :mod:`repro.sim` — discrete-event kernel, RNG streams, monitors.
* :mod:`repro.geo` — coordinates, Haversine, trajectories, GPS noise.
* :mod:`repro.airframe` — UAV platforms, dynamics, autopilot, battery.
* :mod:`repro.channel` — aerial path loss, fading, link budget.
* :mod:`repro.phy` — 802.11n MCS table, error model, rate control.
* :mod:`repro.mac` — DCF, A-MPDU aggregation, block ACK.
* :mod:`repro.net` — link engine, UDP transfers, iperf meter.
* :mod:`repro.control` — XBee control channel, ground station.
* :mod:`repro.measurements` — simulated campaigns, fits, paper data.
* :mod:`repro.core` — the delayed-gratification model (the paper's
  contribution): Cdelay, utility, optimiser, strategies, scenarios.
* :mod:`repro.experiments` — regenerators for every table and figure.

Quickstart::

    from repro.core import airplane_scenario
    decision = airplane_scenario().solve()
    print(decision.distance_m, decision.utility)
"""

from .core import (
    CommunicationDelayModel,
    DelayedGratificationUtility,
    DistanceOptimizer,
    ExponentialFailure,
    HoverAndTransmit,
    LogFitThroughput,
    MixedStrategy,
    MoveAndTransmit,
    OptimalDecision,
    Scenario,
    airplane_scenario,
    quadrocopter_scenario,
    transmit_now,
)

__version__ = "1.0.0"

__all__ = [
    "CommunicationDelayModel",
    "DelayedGratificationUtility",
    "DistanceOptimizer",
    "ExponentialFailure",
    "HoverAndTransmit",
    "LogFitThroughput",
    "MixedStrategy",
    "MoveAndTransmit",
    "OptimalDecision",
    "Scenario",
    "airplane_scenario",
    "quadrocopter_scenario",
    "transmit_now",
    "__version__",
]
