"""repro — reproduction of "Now or Later? Delaying Data Transfer in
Time-Critical Aerial Communication" (Asadpour et al., CoNEXT 2013).

The package is organised bottom-up:

* :mod:`repro.sim` — discrete-event kernel, RNG streams, monitors.
* :mod:`repro.geo` — coordinates, Haversine, trajectories, GPS noise.
* :mod:`repro.airframe` — UAV platforms, dynamics, autopilot, battery.
* :mod:`repro.channel` — aerial path loss, fading, link budget.
* :mod:`repro.phy` — 802.11n MCS table, error model, rate control.
* :mod:`repro.mac` — DCF, A-MPDU aggregation, block ACK.
* :mod:`repro.net` — link engine, UDP transfers, iperf meter.
* :mod:`repro.control` — XBee control channel, ground station.
* :mod:`repro.measurements` — simulated campaigns, fits, paper data.
* :mod:`repro.core` — the delayed-gratification model (the paper's
  contribution): Cdelay, utility, optimiser, strategies, scenarios.
* :mod:`repro.engine` — fleet-scale batch solver: vectorised Eq. 2,
  memoisation, chunked fan-out.
* :mod:`repro.faults` — deterministic fault injection: plans, outage
  schedules, the kernel injector, the ``repro chaos`` runner.
* :mod:`repro.api` — the stable public façade (start here).
* :mod:`repro.experiments` — regenerators for every table and figure.

Quickstart::

    from repro import airplane_scenario, solve
    decision = solve(airplane_scenario())
    print(decision.distance_m, decision.utility)

Fleet-scale::

    from repro import airplane_scenario, sweep
    result = sweep(airplane_scenario(), "mdata_mb", range(5, 50))
    print(result.distance_m)  # one NumPy array, one vectorised pass
"""

from .api import (
    BatchResult,
    BatchSolverEngine,
    FaultPlan,
    FaultSpec,
    OptimalDecision,
    RunResult,
    Scenario,
    airplane_scenario,
    chaos,
    default_engine,
    quadrocopter_scenario,
    scenario,
    solve,
    solve_batch,
    sweep,
    utility_curve,
)
from .core import (
    CommunicationDelayModel,
    DelayedGratificationUtility,
    DistanceOptimizer,
    ExponentialFailure,
    HoverAndTransmit,
    LogFitThroughput,
    MixedStrategy,
    MoveAndTransmit,
    MultiBatchScheduler,
    TableThroughput,
    sensitivity,
    transmit_now,
)

__version__ = "1.1.0"

__all__ = [
    # Stable façade (repro.api)
    "BatchResult",
    "BatchSolverEngine",
    "FaultPlan",
    "FaultSpec",
    "OptimalDecision",
    "RunResult",
    "Scenario",
    "airplane_scenario",
    "chaos",
    "default_engine",
    "quadrocopter_scenario",
    "scenario",
    "solve",
    "solve_batch",
    "sweep",
    "utility_curve",
    # Model building blocks (legacy surface, kept for compatibility)
    "CommunicationDelayModel",
    "DelayedGratificationUtility",
    "DistanceOptimizer",
    "ExponentialFailure",
    "HoverAndTransmit",
    "LogFitThroughput",
    "MixedStrategy",
    "MoveAndTransmit",
    "MultiBatchScheduler",
    "TableThroughput",
    "sensitivity",
    "transmit_now",
    "__version__",
]
