"""Committed-baseline support: grandfather old findings, block new ones.

A baseline file records the fingerprints of findings that pre-date the
lint rule (or were accepted deliberately).  CI fails only on findings
*not* in the baseline, so enabling a new rule never blocks unrelated
work, while every newly introduced violation does.

Fingerprints are ``(rule, path, stripped source line)`` with a
multiplicity count — robust against unrelated edits moving a finding
to a different line number, while still expiring when the offending
line itself is edited or removed.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from .base import Finding

__all__ = ["Baseline"]

_FORMAT_VERSION = 1


class Baseline:
    """A multiset of accepted finding fingerprints."""

    def __init__(
        self, counts: "Dict[Tuple[str, str, str], int] | None" = None
    ) -> None:
        self._counts: Dict[Tuple[str, str, str], int] = dict(counts or {})

    # ------------------------------------------------------------------
    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        """A baseline accepting exactly the given findings."""
        counts: Dict[Tuple[str, str, str], int] = {}
        for finding in findings:
            key = finding.fingerprint
            counts[key] = counts.get(key, 0) + 1
        return cls(counts)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file written by :meth:`save`."""
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        version = payload.get("version")
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported baseline version {version!r} in {path}"
            )
        counts: Dict[Tuple[str, str, str], int] = {}
        for entry in payload.get("entries", []):
            key = (
                str(entry["rule"]),
                str(entry["path"]),
                str(entry.get("snippet", "")),
            )
            counts[key] = counts.get(key, 0) + int(entry.get("count", 1))
        return cls(counts)

    def save(self, path: Path) -> None:
        """Write the baseline as deterministic, diff-friendly JSON."""
        entries = [
            {"rule": rule, "path": file_path, "snippet": snippet, "count": n}
            for (rule, file_path, snippet), n in sorted(self._counts.items())
        ]
        payload = {"version": _FORMAT_VERSION, "entries": entries}
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(self._counts.values())

    def split_new(
        self, findings: Iterable[Finding]
    ) -> Tuple[List[Finding], List[Finding]]:
        """Partition findings into (new, baselined).

        Each fingerprint absorbs at most its recorded multiplicity, so
        *adding another* copy of a baselined violation still fails.
        """
        remaining = dict(self._counts)
        new: List[Finding] = []
        baselined: List[Finding] = []
        for finding in findings:
            key = finding.fingerprint
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                baselined.append(finding)
            else:
                new.append(finding)
        return new, baselined
