"""Per-line suppression comments for ``reprolint``.

A finding is suppressed by a trailing comment on the *same physical
line* the finding is anchored to::

    clock = time.perf_counter  # reprolint: disable=RL102

Several rules can be listed (``disable=RL101,RL104``); a bare
``disable`` with no rule list suppresses every rule on that line.
Suppressions are deliberately per-line — a file- or block-scoped
escape hatch would make it too easy to turn an invariant off wholesale.
The committed baseline (:mod:`repro.analysis.baseline`) is the
mechanism for grandfathering pre-existing findings instead.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .base import Finding

__all__ = ["suppressions_for_source", "split_suppressed"]

_DIRECTIVE = re.compile(
    r"#\s*reprolint:\s*disable(?:=(?P<rules>[A-Za-z0-9_,\s]+))?"
)

#: ``None`` means "every rule is suppressed on this line".
LineSuppressions = Dict[int, Optional[Set[str]]]


def suppressions_for_source(source: str) -> LineSuppressions:
    """Map 1-indexed line numbers to the rule IDs suppressed there."""
    suppressed: LineSuppressions = {}
    for index, line in enumerate(source.splitlines(), start=1):
        if "reprolint" not in line:
            continue
        match = _DIRECTIVE.search(line)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None:
            suppressed[index] = None
        else:
            ids = {part.strip().upper() for part in rules.split(",")}
            suppressed[index] = {rule for rule in ids if rule}
    return suppressed


def _is_suppressed(finding: Finding, lines: LineSuppressions) -> bool:
    if finding.line not in lines:
        return False
    rules = lines[finding.line]
    return rules is None or finding.rule in rules


def split_suppressed(
    findings: Iterable[Finding],
    per_file: Dict[str, LineSuppressions],
) -> Tuple[List[Finding], List[Finding]]:
    """Partition findings into (active, suppressed) by inline comments."""
    active: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in findings:
        lines = per_file.get(finding.path, {})
        (suppressed if _is_suppressed(finding, lines) else active).append(
            finding
        )
    return active, suppressed
