"""Whole-program layer: module naming, summaries, and the import graph.

``reprolint``'s module-level rules see one file at a time; the rules
added in this layer (RL108 fingerprint-completeness, RL109
determinism-taint) need to reason about the *program*: which module
imports which, what each module defines, and what the transitive
import closure of an entry point is.  This module provides that
infrastructure in three pieces:

:func:`summarize_module`
    Reduces one parsed file to a :class:`ModuleSummary` — its dotted
    module name, raw import statements, a top-level symbol table, the
    class/method signature surface RL105 compares, any top-level
    string-tuple constants (the ``*_CODE_MODULES`` fingerprint lists),
    and the per-module determinism-taint candidates from
    :mod:`repro.analysis.taint`.  Summaries are plain data
    (``to_dict``/``from_dict`` round-trip), which is what makes the
    incremental lint cache possible: a warm run restores summaries
    from the persistent store and never re-parses unchanged files.

:class:`ImportGraph`
    The module-level graph over a set of summaries.  Edges are
    *static*: every ``import``/``from`` statement anywhere in a file
    (including lazy function-local imports) contributes, ``TYPE_CHECKING``
    blocks included — over-approximating the runtime import set is the
    safe direction for a rule guarding cache invalidation.

:class:`Program`
    The bundle tree-level checkers receive: all summaries plus the
    (lazily built) import graph.

Module naming is anchored at the ``repro`` package: the linted root is
treated as the package directory, so ``engine/batch.py`` names
``repro.engine.batch`` regardless of where the tree physically lives —
fixture trees in tests use the same coordinates as the real package,
exactly like the path-prefix conventions of RL102/RL107.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from .base import ModuleInfo
from .taint import taint_candidates

__all__ = [
    "PACKAGE",
    "ClassSummary",
    "ImportGraph",
    "ImportRecord",
    "MethodSummary",
    "ModuleSummary",
    "Program",
    "StrTuple",
    "module_name",
    "summarize_module",
]

#: The package the domain invariants govern; root-relative paths map
#: into it (``engine/batch.py`` → ``repro.engine.batch``).
PACKAGE = "repro"

#: Dunder names whose top-level assignment does not make a package
#: ``__init__`` substantive (pure re-export shims stay exempt from
#: RL108 coverage).
_SHIM_OK_TARGETS = ("__all__", "__version__", "__author__", "__doc__")


def module_name(path: str, package: str = PACKAGE) -> Optional[str]:
    """Dotted module name of a root-relative POSIX path, or ``None``.

    ``__init__.py`` names the package itself; anything that is not a
    ``.py`` file has no module name.
    """
    if not path.endswith(".py"):
        return None
    parts = path[: -len(".py")].split("/")
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join([package, *parts]) if parts else package


# ----------------------------------------------------------------------
# Summaries
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ImportRecord:
    """One ``import``/``from`` statement, unresolved."""

    kind: str  # "import" | "from"
    module: Optional[str]  # dotted module text (None for ``from . import x``)
    names: List[str]  # imported names ("from" only)
    level: int  # relative-import level (0 = absolute)
    line: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "module": self.module,
            "names": list(self.names),
            "level": self.level,
            "line": self.line,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ImportRecord":
        return cls(
            kind=str(payload["kind"]),
            module=(
                None if payload.get("module") is None
                else str(payload["module"])
            ),
            names=[str(n) for n in payload.get("names", [])],
            level=int(payload.get("level", 0)),
            line=int(payload.get("line", 0)),
        )


@dataclass(frozen=True)
class MethodSummary:
    """One method's comparable surface (for RL105)."""

    params: List[str]  # positional+kwonly names, sans self/cls
    line: int
    snippet: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "params": list(self.params),
            "line": self.line,
            "snippet": self.snippet,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "MethodSummary":
        return cls(
            params=[str(p) for p in payload.get("params", [])],
            line=int(payload.get("line", 0)),
            snippet=str(payload.get("snippet", "")),
        )


@dataclass(frozen=True)
class ClassSummary:
    """One class definition's comparable surface (for RL105)."""

    name: str
    line: int
    snippet: str
    methods: Dict[str, MethodSummary]

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "line": self.line,
            "snippet": self.snippet,
            "methods": {
                name: method.to_dict()
                for name, method in self.methods.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ClassSummary":
        return cls(
            name=str(payload["name"]),
            line=int(payload.get("line", 0)),
            snippet=str(payload.get("snippet", "")),
            methods={
                str(name): MethodSummary.from_dict(method)
                for name, method in dict(payload.get("methods", {})).items()
            },
        )


@dataclass(frozen=True)
class StrTuple:
    """A top-level ``NAME = ("str", ...)`` constant (fingerprint lists)."""

    values: List[str]
    line: int
    snippet: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "values": list(self.values),
            "line": self.line,
            "snippet": self.snippet,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "StrTuple":
        return cls(
            values=[str(v) for v in payload.get("values", [])],
            line=int(payload.get("line", 0)),
            snippet=str(payload.get("snippet", "")),
        )


@dataclass
class ModuleSummary:
    """Everything the tree-level rules need to know about one file."""

    path: str
    module: Optional[str]
    is_init: bool = False
    #: An ``__init__`` containing only docstring/imports/dunder assigns.
    is_shim: bool = False
    #: Top-level name → kind ("function" | "class" | "constant" | "import").
    symbols: Dict[str, str] = field(default_factory=dict)
    imports: List[ImportRecord] = field(default_factory=list)
    classes: List[ClassSummary] = field(default_factory=list)
    str_tuples: Dict[str, StrTuple] = field(default_factory=dict)
    #: Determinism-taint candidates (see :mod:`repro.analysis.taint`).
    taint: List[Dict[str, object]] = field(default_factory=list)
    #: Direct worker-pool constructions (``ProcessPoolExecutor`` /
    #: ``multiprocessing.Pool`` call sites) for RL111.
    pool_calls: List[Dict[str, object]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "module": self.module,
            "is_init": self.is_init,
            "is_shim": self.is_shim,
            "symbols": dict(self.symbols),
            "imports": [record.to_dict() for record in self.imports],
            "classes": [cls.to_dict() for cls in self.classes],
            "str_tuples": {
                name: entry.to_dict()
                for name, entry in self.str_tuples.items()
            },
            "taint": [dict(c) for c in self.taint],
            "pool_calls": [dict(c) for c in self.pool_calls],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ModuleSummary":
        return cls(
            path=str(payload["path"]),
            module=(
                None if payload.get("module") is None
                else str(payload["module"])
            ),
            is_init=bool(payload.get("is_init", False)),
            is_shim=bool(payload.get("is_shim", False)),
            symbols={
                str(k): str(v)
                for k, v in dict(payload.get("symbols", {})).items()
            },
            imports=[
                ImportRecord.from_dict(r) for r in payload.get("imports", [])
            ],
            classes=[
                ClassSummary.from_dict(c) for c in payload.get("classes", [])
            ],
            str_tuples={
                str(name): StrTuple.from_dict(entry)
                for name, entry in dict(
                    payload.get("str_tuples", {})
                ).items()
            },
            taint=[dict(c) for c in payload.get("taint", [])],
            pool_calls=[dict(c) for c in payload.get("pool_calls", [])],
        )


def _method_params(fn: "ast.FunctionDef | ast.AsyncFunctionDef") -> List[str]:
    args = fn.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if names and names[0] in ("self", "cls"):
        names = names[1:]
    return names


def _is_shim_init(tree: ast.Module) -> bool:
    """True when an ``__init__`` only re-exports (no substantive code)."""
    for node in tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            continue
        if isinstance(node, ast.Expr) and isinstance(node.value, ast.Constant):
            continue  # docstring / bare string
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            if all(
                isinstance(t, ast.Name) and t.id in _SHIM_OK_TARGETS
                for t in targets
            ):
                continue
        return False
    return True


def _str_tuple(node: ast.Assign) -> Optional[StrTuple]:
    if len(node.targets) != 1 or not isinstance(node.targets[0], ast.Name):
        return None
    value = node.value
    if not isinstance(value, (ast.Tuple, ast.List)):
        return None
    values: List[str] = []
    for element in value.elts:
        if not (
            isinstance(element, ast.Constant)
            and isinstance(element.value, str)
        ):
            return None
    values = [element.value for element in value.elts]
    return StrTuple(values=values, line=node.lineno, snippet="")


def summarize_module(module: ModuleInfo) -> ModuleSummary:
    """Reduce one parsed file to its :class:`ModuleSummary`."""
    path = module.path
    dotted = module_name(path)
    is_init = path == "__init__.py" or path.endswith("/__init__.py")
    summary = ModuleSummary(
        path=path,
        module=dotted,
        is_init=is_init,
        is_shim=is_init and _is_shim_init(module.tree),
    )
    # Top-level symbol table + fingerprint tuples.
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            summary.symbols[node.name] = "function"
        elif isinstance(node, ast.ClassDef):
            summary.symbols[node.name] = "class"
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    summary.symbols.setdefault(target.id, "constant")
            entry = _str_tuple(node)
            if entry is not None:
                name = node.targets[0].id  # type: ignore[union-attr]
                summary.str_tuples[name] = StrTuple(
                    values=entry.values,
                    line=entry.line,
                    snippet=module.snippet(entry.line),
                )
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                summary.symbols.setdefault(node.target.id, "constant")
        elif isinstance(node, ast.Import):
            for alias in node.names:
                summary.symbols.setdefault(
                    alias.asname or alias.name.split(".")[0], "import"
                )
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                summary.symbols.setdefault(
                    alias.asname or alias.name, "import"
                )
    # Imports and classes, anywhere in the file (lazy imports and
    # nested classes count).
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                summary.imports.append(
                    ImportRecord(
                        kind="import",
                        module=alias.name,
                        names=[],
                        level=0,
                        line=node.lineno,
                    )
                )
        elif isinstance(node, ast.ImportFrom):
            summary.imports.append(
                ImportRecord(
                    kind="from",
                    module=node.module,
                    names=[alias.name for alias in node.names],
                    level=node.level,
                    line=node.lineno,
                )
            )
        elif isinstance(node, ast.ClassDef):
            methods = {}
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    methods[stmt.name] = MethodSummary(
                        params=_method_params(stmt),
                        line=stmt.lineno,
                        snippet=module.snippet(stmt.lineno),
                    )
            summary.classes.append(
                ClassSummary(
                    name=node.name,
                    line=node.lineno,
                    snippet=module.snippet(node.lineno),
                    methods=methods,
                )
            )
    summary.taint = taint_candidates(module, dotted)
    summary.pool_calls = _pool_call_sites(module)
    return summary


def _pool_call_sites(module: ModuleInfo) -> List[Dict[str, object]]:
    """Direct worker-pool constructions in one file (for RL111).

    Flags calls that *create* a process pool — ``ProcessPoolExecutor``
    under any import spelling, and ``Pool`` resolved (via the file's
    own imports) to :mod:`multiprocessing`.  Attribute forms
    (``futures.ProcessPoolExecutor``) match on the attribute name
    alone: over-approximating is the safe direction for a discipline
    rule, and false positives carry an inline-suppression escape
    hatch.
    """
    mp_aliases = {"multiprocessing"}
    executor_names = {"ProcessPoolExecutor"}
    pool_names: set = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "multiprocessing" and alias.asname:
                    mp_aliases.add(alias.asname)
        elif isinstance(node, ast.ImportFrom) and node.module:
            if node.module.startswith("concurrent"):
                for alias in node.names:
                    if alias.name == "ProcessPoolExecutor":
                        executor_names.add(alias.asname or alias.name)
            if (
                node.module == "multiprocessing"
                or node.module.startswith("multiprocessing.")
            ):
                for alias in node.names:
                    if alias.name == "Pool":
                        pool_names.add(alias.asname or alias.name)
    sites: List[Dict[str, object]] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            if func.id in executor_names:
                name = "ProcessPoolExecutor"
            elif func.id in pool_names:
                name = "multiprocessing.Pool"
        elif isinstance(func, ast.Attribute):
            if func.attr == "ProcessPoolExecutor":
                name = "ProcessPoolExecutor"
            elif (
                func.attr == "Pool"
                and isinstance(func.value, ast.Name)
                and func.value.id in mp_aliases
            ):
                name = "multiprocessing.Pool"
        if name is not None:
            sites.append(
                {
                    "name": name,
                    "line": node.lineno,
                    "snippet": module.snippet(node.lineno),
                }
            )
    return sites


# ----------------------------------------------------------------------
# The import graph
# ----------------------------------------------------------------------

def _package_parts(summary: ModuleSummary) -> List[str]:
    """The package a module's relative imports resolve against."""
    if summary.module is None:
        return []
    parts = summary.module.split(".")
    return parts if summary.is_init else parts[:-1]


class ImportGraph:
    """Module-level import graph over a set of summaries.

    Nodes are dotted module names (only modules present in the linted
    tree); edges are the statically declared imports, pointing at the
    module each statement *names* (see :meth:`_resolve_edges`).
    """

    def __init__(self, summaries: Iterable[ModuleSummary]) -> None:
        self.by_module: Dict[str, ModuleSummary] = {}
        for summary in summaries:
            if summary.module is not None:
                self.by_module[summary.module] = summary
        self.edges: Dict[str, Set[str]] = {
            name: self._resolve_edges(summary)
            for name, summary in self.by_module.items()
        }

    # ------------------------------------------------------------------
    def __contains__(self, module: str) -> bool:
        return module in self.by_module

    def modules(self) -> List[str]:
        """All module names, sorted."""
        return sorted(self.by_module)

    def symbol(self, module: str, name: str) -> Optional[str]:
        """Kind of ``name`` in ``module``'s top-level symbol table."""
        summary = self.by_module.get(module)
        if summary is None:
            return None
        return summary.symbols.get(name)

    # ------------------------------------------------------------------
    def _resolve_edges(self, summary: ModuleSummary) -> Set[str]:
        # Edges go to the module *named* by the import, not to its
        # ancestor packages: a shim ``__init__`` re-exports every
        # sibling, so routing edges through ancestors would make every
        # ``from ..core.delay import X`` pull all of ``core.*`` into
        # the closure.  What the importing code can actually *use* is
        # the named module (plus, for symbol imports from a package,
        # whatever the package re-exports — the init's own edges).
        out: Set[str] = set()
        base_parts = _package_parts(summary)
        for record in summary.imports:
            if record.kind == "import":
                # ``import a.b.c`` binds a.b.c; edge to the longest
                # prefix that lives in this tree.
                parts = (record.module or "").split(".")
                for i in range(len(parts), 0, -1):
                    candidate = ".".join(parts[:i])
                    if candidate in self.by_module:
                        out.add(candidate)
                        break
                continue
            # from-import: resolve the base module (relative levels
            # against the containing package), then decide per name
            # whether it names a submodule or a symbol.
            if record.level:
                if len(base_parts) < record.level - 1:
                    continue  # escapes the linted tree
                base = base_parts[: len(base_parts) - (record.level - 1)]
                if record.module:
                    base = base + record.module.split(".")
                resolved = ".".join(base)
            else:
                resolved = record.module or ""
            if not resolved or not (
                resolved == PACKAGE or resolved.startswith(PACKAGE + ".")
            ):
                continue
            for name in record.names:
                submodule = f"{resolved}.{name}"
                if submodule in self.by_module:
                    out.add(submodule)
                elif resolved in self.by_module:
                    out.add(resolved)
        out.discard(summary.module or "")
        return out

    # ------------------------------------------------------------------
    def closure(
        self,
        entry: str,
        prune: Optional[Iterable[str]] = None,
    ) -> Set[str]:
        """Transitive import closure of ``entry`` (inclusive).

        ``prune`` lists module prefixes whose *outgoing* edges are not
        followed: the module itself still appears in the closure, but
        nothing reachable only through it does.  RL108 prunes at the
        result-neutral layers (obs/store/perf/...), so the cache layer
        importing the engine does not drag the engine into every
        closure that merely *uses* caching.
        """
        prune_prefixes = tuple(prune or ())

        def pruned(module: str) -> bool:
            # The bare package root matches exactly, never as a prefix
            # — a "repro" prefix would otherwise prune every module.
            for p in prune_prefixes:
                if module == p:
                    return True
                if p != PACKAGE and module.startswith(p + "."):
                    return True
            return False

        seen: Set[str] = set()
        stack = [entry]
        while stack:
            module = stack.pop()
            if module in seen or module not in self.by_module:
                continue
            seen.add(module)
            if pruned(module) and module != entry:
                continue
            stack.extend(sorted(self.edges.get(module, ())))
        return seen


# ----------------------------------------------------------------------
# The program bundle handed to tree-level checkers
# ----------------------------------------------------------------------

@dataclass
class Program:
    """All module summaries plus the (lazily built) import graph."""

    root: str
    summaries: Dict[str, ModuleSummary]
    _graph: Optional[ImportGraph] = field(default=None, repr=False)

    @property
    def graph(self) -> ImportGraph:
        if self._graph is None:
            self._graph = ImportGraph(self.summaries.values())
        return self._graph

    def summary(self, path: str) -> Optional[ModuleSummary]:
        return self.summaries.get(path)
