"""Core types of the ``reprolint`` static-analysis framework.

The reproduction's fidelity rests on a handful of *domain invariants*
(seeded randomness, suffixed units, simulated-time purity, exact
scalar↔batch twinning) that ordinary linters cannot see.  ``reprolint``
parses the source tree with :mod:`ast` and runs a registry of pluggable
checkers, each owning one rule ID:

========  ============================================================
RL101     rng-discipline — all randomness flows through the seeded
          stream registry in :mod:`repro.sim.random`
RL102     sim-time purity — no wall-clock reads inside simulation code
RL103     unit-suffix discipline — no dB/linear mixing, no unsuffixed
          physical-quantity defaults in config dataclasses
RL104     float-equality — no ``==``/``!=`` against float literals
RL105     batch-twin parity — every ``Batch*`` class mirrors its
          scalar twin's public API modulo the array dimension
RL106     wall-clock discipline — instrumentation outside
          :mod:`repro.perf` / :mod:`repro.obs` reads time only via
          :data:`repro.perf.wall_clock`
RL107     store-atomic-io — file writes under :mod:`repro.store` flow
          through the tmp+rename helpers in ``store/atomic.py``
RL108     fingerprint-completeness — the static import closure of each
          cacheable entry point is covered by the matching
          ``*_CODE_MODULES`` tuple in :mod:`repro.store.fingerprint`
RL109     determinism-taint — wall-clock/entropy/env reads never reach
          solver results, manifests or store keys except via the
          sanctioned :mod:`repro.perf` / seeded-stream APIs
RL110     obs-guard discipline — ``obs.*`` call sites in hot-path
          modules sit behind the ``obs is None`` zero-cost pattern
RL111     exec-backend discipline — ``ProcessPoolExecutor`` /
          ``multiprocessing.Pool`` are constructed only inside
          :mod:`repro.exec`
========  ============================================================

Checkers come in two shapes: *module* checkers (see
:class:`ModuleChecker`) visit one file at a time; *tree* checkers (see
:class:`TreeChecker`) receive the whole :class:`~repro.analysis.graph.Program`
— every module's summary plus the import graph — which RL105 needs to
pair classes across files, RL108/RL109 need for closure and taint
context, and RL111 needs to sweep pool-construction sites per file.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .graph import Program

__all__ = [
    "Finding",
    "Rule",
    "ModuleInfo",
    "ModuleChecker",
    "TreeChecker",
    "register_checker",
    "all_checkers",
    "all_rules",
    "checkers_for",
]


@dataclass(frozen=True)
class Rule:
    """Identity and rationale of one lint rule."""

    id: str
    name: str
    #: One-line statement of the invariant the rule protects.
    summary: str


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    message: str
    #: The stripped source line, used for baseline fingerprinting so
    #: findings survive unrelated line-number drift.
    snippet: str = ""
    #: ``"error"`` findings fail the run; ``"warning"`` findings are
    #: reported (and SARIF-annotated) but do not flip ``LintReport.ok``.
    severity: str = "error"

    @property
    def fingerprint(self) -> Tuple[str, str, str]:
        """Location-stable identity: (rule, path, snippet)."""
        return (self.rule, self.path, self.snippet)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "snippet": self.snippet,
            "severity": self.severity,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Finding":
        """Inverse of :meth:`to_dict`."""
        return cls(
            rule=str(payload["rule"]),
            path=str(payload["path"]),
            line=int(payload.get("line", 0)),
            message=str(payload.get("message", "")),
            snippet=str(payload.get("snippet", "")),
            severity=str(payload.get("severity", "error")),
        )


@dataclass
class ModuleInfo:
    """One parsed source file, as handed to checkers."""

    #: Path relative to the linted root, in POSIX form.
    path: str
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()

    def snippet(self, line: int) -> str:
        """The stripped source text of 1-indexed ``line``."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(
        self,
        rule: str,
        node: ast.AST,
        message: str,
        severity: str = "error",
    ) -> Finding:
        """Build a :class:`Finding` anchored at ``node``."""
        line = getattr(node, "lineno", 0)
        return Finding(
            rule=rule,
            path=self.path,
            line=line,
            message=message,
            snippet=self.snippet(line),
            severity=severity,
        )


class ModuleChecker:
    """Base for checkers that inspect one module at a time."""

    rule: Rule

    def check_module(self, module: ModuleInfo) -> List[Finding]:
        """Findings for one parsed file."""
        raise NotImplementedError


class TreeChecker:
    """Base for checkers that need the whole program (cross-file rules).

    Tree checkers consume :class:`~repro.analysis.graph.ModuleSummary`
    data — plain serialisable facts, not ASTs — so the incremental
    runner can feed them from the per-file cache without re-parsing
    unchanged files.
    """

    rule: Rule

    def check_program(self, program: "Program") -> List[Finding]:
        """Findings across the whole linted tree."""
        raise NotImplementedError


_REGISTRY: Dict[str, type] = {}


def register_checker(cls: type) -> type:
    """Class decorator adding a checker to the global registry."""
    rule = cls.rule
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate checker for rule {rule.id}")
    _REGISTRY[rule.id] = cls
    return cls


def all_rules() -> List[Rule]:
    """Every registered rule, sorted by ID."""
    return [_REGISTRY[rule_id].rule for rule_id in sorted(_REGISTRY)]


def all_checkers() -> List[object]:
    """Fresh instances of every registered checker, sorted by rule ID."""
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def checkers_for(rule_ids: Optional[List[str]] = None) -> List[object]:
    """Fresh checker instances for ``rule_ids`` (all when ``None``)."""
    if rule_ids is None:
        return all_checkers()
    unknown = sorted(set(rule_ids) - set(_REGISTRY))
    if unknown:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown rule(s) {unknown}; known rules: {known}")
    return [_REGISTRY[rule_id]() for rule_id in sorted(set(rule_ids))]
