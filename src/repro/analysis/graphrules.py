"""Whole-program rules RL108-RL111 built on the import graph.

RL108 (fingerprint-completeness), RL109 (determinism-taint) and RL111
(exec-backend discipline) are tree checkers over
:class:`~repro.analysis.graph.Program`; RL110 (obs-guard discipline)
is a module checker restricted to the hot-path files where a missed
guard costs real time.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence

from .base import (
    Finding,
    ModuleChecker,
    ModuleInfo,
    Rule,
    TreeChecker,
    register_checker,
)
from .graph import PACKAGE, Program

__all__ = [
    "DeterminismTaintChecker",
    "ExecBackendDisciplineChecker",
    "FingerprintCompletenessChecker",
    "ObsGuardChecker",
    "ENTRY_MODULES",
    "EXEC_PATH_PREFIX",
    "PRUNE_PREFIXES",
]

#: Root-relative path of the fingerprint module the tuples live in.
FINGERPRINT_PATH = "store/fingerprint.py"

#: Fingerprint tuple → the entry module whose static import closure it
#: must cover (``api.solve`` → engine, ``run_campaign`` → measurements,
#: chaos runs → faults).
ENTRY_MODULES = {
    "SOLVER_CODE_MODULES": "repro.engine.batch",
    "CAMPAIGN_CODE_MODULES": "repro.measurements.batch",
    "CHAOS_CODE_MODULES": "repro.faults.chaos",
    "RELAY_CODE_MODULES": "repro.relay.batch",
}

#: Layers whose *outgoing* imports are not followed when computing a
#: closure, and which never need fingerprint coverage themselves:
#: caching, observability, reporting and CLI plumbing are
#: result-neutral by contract (the store layer importing the engine
#: must not drag the engine into every closure that merely caches).
#: ``repro.exec`` qualifies because serial and pooled execution are
#: pinned byte-identical by the invariance suites — scheduling can
#: never change a cached result.  The bare package root is pruned too
#: (exact match — see :meth:`ImportGraph.closure`).
PRUNE_PREFIXES = (
    PACKAGE,
    "repro.perf",
    "repro.obs",
    "repro.exec",
    "repro.store",
    "repro.analysis",
    "repro.report",
    "repro.api",
    "repro.cli",
    "repro.experiments",
)


def _covered(module: str, entries: Iterable[str]) -> bool:
    return any(
        module == entry or module.startswith(entry + ".")
        for entry in entries
    )


def _exempt(module: str) -> bool:
    """True for modules the fingerprint never needs to cover.

    The package root matches exactly (as a prefix it would exempt
    every module); the other pruned layers exempt their whole subtree.
    """
    for prefix in PRUNE_PREFIXES:
        if module == prefix:
            return True
        if prefix != PACKAGE and module.startswith(prefix + "."):
            return True
    return False


# ----------------------------------------------------------------------
# RL108 — fingerprint completeness
# ----------------------------------------------------------------------

@register_checker
class FingerprintCompletenessChecker(TreeChecker):
    """RL108: every cacheable entry point's import closure is keyed.

    The store invalidates cached results by hashing the source of the
    ``*_CODE_MODULES`` tuples in :mod:`repro.store.fingerprint`.  A
    module that the solver/campaign/chaos entry point (transitively,
    statically) imports but that the tuple does not cover is a
    *stale-cache bug*: editing it changes results without changing the
    key.  The reverse — a tuple entry matching nothing in the closure
    — is a warning: dead entries dilute the fingerprint and mask real
    gaps.
    """

    rule = Rule(
        id="RL108",
        name="fingerprint-completeness",
        summary=(
            "each *_CODE_MODULES tuple must cover the static import "
            "closure of its entry module (missing = stale-cache bug)"
        ),
    )

    def check_program(self, program: Program) -> List[Finding]:
        fingerprint = program.summary(FINGERPRINT_PATH)
        if fingerprint is None:
            return []
        graph = program.graph
        findings: List[Finding] = []
        for tuple_name, entry in sorted(ENTRY_MODULES.items()):
            declared = fingerprint.str_tuples.get(tuple_name)
            if declared is None or entry not in graph:
                continue
            closure = graph.closure(entry, prune=PRUNE_PREFIXES)
            required = sorted(
                module
                for module in closure
                if not _exempt(module)
                and not graph.by_module[module].is_shim
            )
            for module in required:
                if _covered(module, declared.values):
                    continue
                findings.append(
                    Finding(
                        rule=self.rule.id,
                        path=fingerprint.path,
                        line=declared.line,
                        message=(
                            f"{tuple_name} is missing '{module}': it is "
                            f"in the static import closure of {entry} "
                            "but not fingerprinted, so cached results "
                            "would survive edits to it (stale-cache "
                            "bug) — add it to the tuple"
                        ),
                        snippet=declared.snippet,
                    )
                )
            for declared_entry in declared.values:
                if any(_covered(m, (declared_entry,)) for m in closure):
                    continue
                findings.append(
                    Finding(
                        rule=self.rule.id,
                        path=fingerprint.path,
                        line=declared.line,
                        message=(
                            f"{tuple_name} entry '{declared_entry}' "
                            "matches nothing in the static import "
                            f"closure of {entry}; dead fingerprint "
                            "entries mask real coverage gaps — remove "
                            "or fix it"
                        ),
                        snippet=declared.snippet,
                        severity="warning",
                    )
                )
        return findings


# ----------------------------------------------------------------------
# RL109 — determinism taint
# ----------------------------------------------------------------------

@register_checker
class DeterminismTaintChecker(TreeChecker):
    """RL109: wall-clock/entropy/env values never reach results or keys.

    Turns the per-module taint candidates collected by
    :mod:`repro.analysis.taint` into findings.  ``sink`` candidates (a
    tainted value handed to ``config_key`` or a ``RunManifest``) are
    violations anywhere; ``return`` candidates (a function returning a
    tainted value) are violations only inside modules the fingerprint
    tuples mark as cacheable — their results feed the store, so they
    must be pure functions of (config, seed, code).  The sanctioned
    routes — :data:`repro.perf.wall_clock` for telemetry, seeded
    streams from :mod:`repro.sim.random` — resolve to non-source paths
    and never trip the rule.
    """

    rule = Rule(
        id="RL109",
        name="determinism-taint",
        summary=(
            "wall-clock/entropy/env reads must not flow into solver "
            "results, manifests or store keys (use repro.perf or "
            "seeded streams)"
        ),
    )

    def check_program(self, program: Program) -> List[Finding]:
        fingerprint = program.summary(FINGERPRINT_PATH)
        cacheable: List[str] = []
        if fingerprint is not None:
            for tuple_name in ENTRY_MODULES:
                declared = fingerprint.str_tuples.get(tuple_name)
                if declared is not None:
                    cacheable.extend(declared.values)
        findings: List[Finding] = []
        for path in sorted(program.summaries):
            summary = program.summaries[path]
            for candidate in summary.taint:
                kind = candidate.get("kind")
                origin = str(candidate.get("origin", "a nondeterministic source"))
                line = int(candidate.get("line", 0))
                snippet = str(candidate.get("snippet", ""))
                if kind == "sink":
                    sink = str(candidate.get("sink", "a persistent sink"))
                    findings.append(
                        Finding(
                            rule=self.rule.id,
                            path=path,
                            line=line,
                            message=(
                                f"value from {origin} reaches {sink}; "
                                "store keys and manifests must be pure "
                                "functions of (config, seed, code) — "
                                "route timing through repro.perf and "
                                "randomness through seeded streams"
                            ),
                            snippet=snippet,
                        )
                    )
                elif (
                    kind == "return"
                    and summary.module is not None
                    and _covered(summary.module, cacheable)
                ):
                    function = str(candidate.get("function", "?"))
                    findings.append(
                        Finding(
                            rule=self.rule.id,
                            path=path,
                            line=line,
                            message=(
                                f"'{function}' in fingerprinted module "
                                f"{summary.module} returns a value from "
                                f"{origin}; cacheable results must be "
                                "bit-deterministic — keep wall-clock "
                                "telemetry in repro.perf stage timers"
                            ),
                            snippet=snippet,
                        )
                    )
        return findings


# ----------------------------------------------------------------------
# RL111 — exec-backend discipline
# ----------------------------------------------------------------------

#: The one root-relative subtree allowed to construct worker pools.
EXEC_PATH_PREFIX = "exec/"


@register_checker
class ExecBackendDisciplineChecker(TreeChecker):
    """RL111: worker pools are built only inside ``repro/exec/``.

    The execution backend is the single owner of process pools: it
    amortises spawn cost across call sites, guards against fork
    hazards, recovers from worker crashes, and keeps dispatch
    result-neutral.  A ``ProcessPoolExecutor`` or
    ``multiprocessing.Pool`` constructed anywhere else reintroduces
    exactly the per-call spawn + pickle overhead the backend exists to
    remove — and dodges its determinism and recovery contracts.  Route
    the work through :func:`repro.exec.default_backend` /
    :func:`repro.exec.backend_for` instead (thread pools for
    GIL-releasing NumPy stages go through ``thread_map``).
    """

    rule = Rule(
        id="RL111",
        name="exec-backend-discipline",
        summary=(
            "ProcessPoolExecutor/multiprocessing.Pool must only be "
            "constructed inside repro/exec/ — go through the "
            "execution backend"
        ),
    )

    def check_program(self, program: Program) -> List[Finding]:
        findings: List[Finding] = []
        for path in sorted(program.summaries):
            if path.startswith(EXEC_PATH_PREFIX):
                continue
            summary = program.summaries[path]
            for site in summary.pool_calls:
                name = str(site.get("name", "a worker pool"))
                findings.append(
                    Finding(
                        rule=self.rule.id,
                        path=path,
                        line=int(site.get("line", 0)),
                        message=(
                            f"direct {name} construction outside "
                            "repro/exec/; use the shared execution "
                            "backend (repro.exec.default_backend / "
                            "backend_for) so pools are reused, "
                            "fork-safe and crash-recovering"
                        ),
                        snippet=str(site.get("snippet", "")),
                    )
                )
        return findings


# ----------------------------------------------------------------------
# RL110 — obs-guard discipline
# ----------------------------------------------------------------------

#: Hot-path files where an unguarded ``obs.*`` call costs per-decision
#: or per-event time even when observability is disabled.
HOT_PATH_FILES = (
    "engine/batch.py",
    "sim/kernel.py",
    "measurements/batch.py",
    "store/incremental.py",
    "faults/chaos.py",
)

_TERMINATORS = (ast.Return, ast.Raise, ast.Continue, ast.Break)


def _optional_annotation(annotation: Optional[ast.expr]) -> bool:
    if annotation is None:
        return False
    try:
        text = ast.unparse(annotation)
    except Exception:  # pragma: no cover - malformed annotation
        return False
    return "Optional" in text or "None" in text


def _obs_param(
    fn: "ast.FunctionDef | ast.AsyncFunctionDef",
) -> Optional[str]:
    """``"optional"`` / ``"required"`` for an ``obs`` parameter, or None."""
    args = fn.args
    positional = args.posonlyargs + args.args
    offset = len(positional) - len(args.defaults)
    for index, arg in enumerate(positional):
        if arg.arg != "obs":
            continue
        default = (
            args.defaults[index - offset] if index >= offset else None
        )
        if (
            isinstance(default, ast.Constant) and default.value is None
        ) or _optional_annotation(arg.annotation):
            return "optional"
        return "required"
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        if arg.arg != "obs":
            continue
        if (
            isinstance(default, ast.Constant) and default.value is None
        ) or _optional_annotation(arg.annotation):
            return "optional"
        return "required"
    return None


class _GuardWalker:
    """Walk one scope tracking whether ``obs is not None`` is proven."""

    def __init__(self, module: ModuleInfo, rule: str) -> None:
        self.module = module
        self.rule = rule
        self.findings: List[Finding] = []
        #: Boolean locals assigned from an ``obs is (not) None`` test:
        #: name → "pos" (truthy ⇒ obs present) / "neg" (truthy ⇒ absent).
        self.flags: Dict[str, str] = {}

    # -- test classification -------------------------------------------
    def _test_kind(self, expr: ast.expr) -> Optional[str]:
        """"pos" if truth implies obs is not None, "neg" if obs is None."""
        if isinstance(expr, ast.Compare) and len(expr.ops) == 1:
            left, (op,), (right,) = expr.left, expr.ops, expr.comparators
            if (
                isinstance(left, ast.Name)
                and left.id == "obs"
                and isinstance(right, ast.Constant)
                and right.value is None
            ):
                return "pos" if isinstance(op, ast.IsNot) else (
                    "neg" if isinstance(op, ast.Is) else None
                )
        if isinstance(expr, ast.Name):
            return self.flags.get(expr.id)
        if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.Not):
            inner = self._test_kind(expr.operand)
            if inner == "pos":
                return "neg"
            if inner == "neg":
                return "pos"
        if isinstance(expr, ast.BoolOp):
            if isinstance(expr.op, ast.And):
                # Truth of a conjunction implies each operand: an
                # ``obs is not None`` member makes the whole test "pos".
                for operand in expr.values:
                    if self._test_kind(operand) == "pos":
                        return "pos"
            else:
                # Falsity of a disjunction implies each operand false:
                # ``obs is None or obs.metrics is None`` is "neg" — the
                # else/fall-through side proves obs is not None.
                for operand in expr.values:
                    if self._test_kind(operand) == "neg":
                        return "neg"
        return None

    # -- expression checking -------------------------------------------
    def check_expr(self, expr: Optional[ast.expr], guarded: bool) -> None:
        if expr is None:
            return
        if isinstance(expr, ast.BoolOp):
            state = guarded
            for operand in expr.values:
                self.check_expr(operand, state)
                kind = self._test_kind(operand)
                if isinstance(expr.op, ast.And) and kind == "pos":
                    state = True
                elif isinstance(expr.op, ast.Or) and kind == "neg":
                    state = True
            return
        if isinstance(expr, ast.IfExp):
            kind = self._test_kind(expr.test)
            self.check_expr(expr.test, guarded)
            self.check_expr(expr.body, guarded or kind == "pos")
            self.check_expr(expr.orelse, guarded or kind == "neg")
            return
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "obs"
        ):
            if not guarded:
                self.findings.append(
                    self.module.finding(
                        self.rule,
                        expr,
                        (
                            f"`obs.{expr.attr}` is not behind the "
                            "`obs is None` zero-cost guard; hot-path "
                            "observability must reduce to a pointer "
                            "check when disabled (see docs/"
                            "OBSERVABILITY.md)"
                        ),
                    )
                )
            # Do not descend — obs.metrics.counter(...) is one use.
            self.check_expr_children(expr.value, guarded)
            return
        self.check_expr_children(expr, guarded)

    def check_expr_children(
        self, expr: ast.expr, guarded: bool
    ) -> None:
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self.check_expr(child, guarded)
            elif isinstance(child, ast.keyword):
                self.check_expr(child.value, guarded)
            elif isinstance(child, ast.comprehension):
                self.check_expr(child.iter, guarded)
                for cond in child.ifs:
                    self.check_expr(cond, guarded)

    # -- statement walk ------------------------------------------------
    def _terminates(self, body: Sequence[ast.stmt]) -> bool:
        return bool(body) and isinstance(body[-1], _TERMINATORS)

    def walk(self, body: Sequence[ast.stmt], guarded: bool) -> bool:
        """Walk statements; returns the guard state after the block."""
        for stmt in body:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue  # nested scopes analysed independently
            if isinstance(stmt, ast.If):
                kind = self._test_kind(stmt.test)
                self.check_expr(stmt.test, guarded)
                self.walk(stmt.body, guarded or kind == "pos")
                self.walk(stmt.orelse, guarded or kind == "neg")
                if (
                    kind == "neg"
                    and self._terminates(stmt.body)
                    and not stmt.orelse
                ):
                    guarded = True  # early-exit pattern: rest is guarded
                continue
            if isinstance(stmt, (ast.While,)):
                self.check_expr(stmt.test, guarded)
                self.walk(stmt.body, guarded)
                self.walk(stmt.orelse, guarded)
                continue
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                self.check_expr(stmt.iter, guarded)
                self.walk(stmt.body, guarded)
                self.walk(stmt.orelse, guarded)
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    self.check_expr(item.context_expr, guarded)
                self.walk(stmt.body, guarded)
                continue
            if isinstance(stmt, ast.Try):
                self.walk(stmt.body, guarded)
                for handler in stmt.handlers:
                    self.walk(handler.body, guarded)
                self.walk(stmt.orelse, guarded)
                self.walk(stmt.finalbody, guarded)
                continue
            if isinstance(stmt, ast.Assign):
                kind = (
                    self._test_kind(stmt.value)
                    if len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    else None
                )
                if kind is not None:
                    self.flags[stmt.targets[0].id] = kind  # type: ignore[union-attr]
                self.check_expr(stmt.value, guarded)
                continue
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.check_expr(child, guarded)
        return guarded


def _scope_statements(body: Sequence[ast.stmt]) -> "List[ast.stmt]":
    """All statements of one scope, nested def/class bodies excluded."""
    out: List[ast.stmt] = []
    for stmt in body:
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        out.append(stmt)
        for field_name in ("body", "orelse", "finalbody"):
            inner = getattr(stmt, field_name, None)
            if inner:
                out.extend(_scope_statements(inner))
        for handler in getattr(stmt, "handlers", []) or []:
            out.extend(_scope_statements(handler.body))
    return out


def _scope_binds_optional_obs(
    fn: "ast.FunctionDef | ast.AsyncFunctionDef",
) -> bool:
    """True when this scope's ``obs`` may legitimately be ``None``."""
    param = _obs_param(fn)
    if param == "required":
        return False
    may_be_none = param == "optional"
    for stmt in _scope_statements(fn.body):
        if not isinstance(stmt, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "obs"
            for t in stmt.targets
        ):
            continue
        value = stmt.value
        if isinstance(value, ast.Attribute) and value.attr == "obs":
            may_be_none = True  # obs = self.obs (Optional field)
        elif isinstance(value, ast.Call):
            return False  # obs = ObsContext.enabled(...): concrete
    return may_be_none


@register_checker
class ObsGuardChecker(ModuleChecker):
    """RL110: hot-path ``obs.*`` uses sit behind the zero-cost guard.

    The observability contract (docs/OBSERVABILITY.md) promises that a
    disabled ``ObsContext`` costs one pointer comparison per decision.
    That only holds if every ``obs.<attr>`` access in the hot paths is
    dominated by an ``obs is not None`` test — via a guarding ``if``,
    an ``and``-chain, a ternary, an early ``return`` on ``obs is
    None``, or a boolean flag derived from the test.  Scopes where
    ``obs`` is provably non-None (required parameter, freshly
    constructed) are exempt.
    """

    rule = Rule(
        id="RL110",
        name="obs-guard-discipline",
        summary=(
            "hot-path obs.* call sites must be behind the `obs is "
            "None` zero-cost guard pattern"
        ),
    )

    def check_module(self, module: ModuleInfo) -> List[Finding]:
        if module.path not in HOT_PATH_FILES:
            return []
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            if not _scope_binds_optional_obs(node):
                continue
            walker = _GuardWalker(module, self.rule.id)
            walker.walk(node.body, guarded=False)
            findings.extend(walker.findings)
        return findings
