"""SARIF 2.1.0 output for ``reprolint`` (CI inline annotation).

GitHub's ``codeql-action/upload-sarif`` turns a SARIF log into inline
PR annotations, so RL1xx findings land on the offending line instead
of in a buried job log.  One run per report: the driver is
``reprolint``, its rules come from the registry, results carry the
severity mapping (error → ``error``, warning → ``warning``); findings
absorbed by the committed baseline or an inline ``# reprolint:
disable`` comment are emitted as suppressed ``note`` results so the
history stays visible without failing the code-scanning gate.

Serialisation is deterministic (sorted keys, fixed field order from
the report, no timestamps): a warm cache run produces byte-identical
SARIF to a cold one, which CI asserts.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, List, Optional

from .base import Finding, all_rules
from .runner import LintReport

__all__ = ["sarif_report", "sarif_json", "write_sarif"]

_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
_INFO_URI = "docs/STATIC_ANALYSIS.md"


def _level(finding: Finding) -> str:
    return "warning" if finding.severity == "warning" else "error"


def _fingerprint(finding: Finding) -> str:
    digest = hashlib.sha256(
        "\0".join(finding.fingerprint).encode("utf-8")
    ).hexdigest()
    return digest[:24]


def _result(
    finding: Finding,
    rule_index: Dict[str, int],
    uri_prefix: str,
    suppression: Optional[str] = None,
) -> Dict[str, object]:
    uri = (
        f"{uri_prefix}/{finding.path}" if uri_prefix else finding.path
    )
    result: Dict[str, object] = {
        "ruleId": finding.rule,
        "ruleIndex": rule_index.get(finding.rule, -1),
        "level": "note" if suppression is not None else _level(finding),
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": uri},
                    "region": {"startLine": max(1, finding.line)},
                }
            }
        ],
        "partialFingerprints": {
            "reprolint/v1": _fingerprint(finding),
        },
    }
    if suppression is not None:
        result["suppressions"] = [{"kind": suppression}]
    return result


def _derive_prefix(report: LintReport) -> str:
    """Repo-relative path prefix of the linted root, when derivable.

    SARIF URIs must be relative to the repository checkout for GitHub
    to anchor annotations; when lint ran on ``<repo>/src/repro`` from
    ``<repo>``, findings at ``engine/batch.py`` need the
    ``src/repro/`` prefix.  Roots outside the working directory (or
    synthetic ``<memory>`` roots) get no prefix.
    """
    root = report.root
    if root.startswith("<"):
        return ""
    try:
        relative = Path(root).resolve().relative_to(Path.cwd().resolve())
    except (OSError, ValueError):
        return ""
    prefix = relative.as_posix()
    return "" if prefix == "." else prefix


def sarif_report(
    report: LintReport, uri_prefix: Optional[str] = None
) -> Dict[str, object]:
    """The SARIF document (as a dict) for one lint report."""
    if uri_prefix is None:
        uri_prefix = _derive_prefix(report)
    uri_prefix = uri_prefix.rstrip("/")
    selected = set(report.rules)
    rules_meta: List[Dict[str, object]] = []
    rule_index: Dict[str, int] = {}
    for rule in all_rules():
        if rule.id not in selected:
            continue
        rule_index[rule.id] = len(rules_meta)
        rules_meta.append(
            {
                "id": rule.id,
                "name": rule.name,
                "shortDescription": {"text": rule.summary},
                "helpUri": _INFO_URI,
            }
        )
    results: List[Dict[str, object]] = []
    for finding in report.new_findings:
        results.append(_result(finding, rule_index, uri_prefix))
    for finding in report.baselined:
        results.append(
            _result(finding, rule_index, uri_prefix, suppression="external")
        )
    for finding in report.suppressed:
        results.append(
            _result(finding, rule_index, uri_prefix, suppression="inSource")
        )
    return {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "informationUri": _INFO_URI,
                        "rules": rules_meta,
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }


def sarif_json(
    report: LintReport, uri_prefix: Optional[str] = None
) -> str:
    """Deterministic SARIF serialisation (sorted keys, trailing newline)."""
    document = sarif_report(report, uri_prefix=uri_prefix)
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def write_sarif(
    report: LintReport,
    path: Path,
    uri_prefix: Optional[str] = None,
) -> Path:
    """Write the SARIF log to ``path`` (parents created)."""
    path = Path(path)
    if path.parent and not path.parent.is_dir():
        os.makedirs(path.parent, exist_ok=True)
    path.write_text(sarif_json(report, uri_prefix=uri_prefix), encoding="utf-8")
    return path
