"""Determinism-taint pass: where do wall-clock/entropy values flow?

The reproduction's bit-determinism contract says result payloads,
manifests and store keys must be pure functions of (config, seed,
code).  A value read from ``time.time()``, ``random.*``,
``os.urandom`` or the process environment breaks that contract the
moment it reaches one of those places — a store key salted with a
timestamp silently disables caching; a manifest field derived from
``os.environ`` makes two identical runs disagree.

This pass is deliberately *lightweight*: intraprocedural, per
function (plus the module body), flow-sensitive only in the cheapest
way (reassigning a name from a clean expression clears its taint).
It does not chase taint through calls, containers or attributes —
under-approximating keeps the rule quiet enough to be trusted, and
the sanctioned escape hatches (:data:`repro.perf.wall_clock` for
telemetry, seeded streams from :mod:`repro.sim.random`) resolve to
non-source paths, so blessed code needs no annotations.

The pass emits serialisable *candidates*, not findings: ``sink``
candidates (a tainted value reaches a store key or manifest — always
a violation) and ``return`` candidates (a public function returns a
tainted value — a violation only when the module is named by one of
the ``*_CODE_MODULES`` fingerprint tuples, i.e. when its results are
cacheable).  RL109 in :mod:`repro.analysis.graphrules` turns
candidates into findings with whole-program context.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

from .base import ModuleInfo

__all__ = ["collect_aliases", "resolve", "source_origin", "taint_candidates"]


#: Canonical dotted-path prefixes that mint nondeterminism, with the
#: human-readable origin reported in findings.
_SOURCE_PREFIXES = (
    ("random.", "the unseeded stdlib `random` module"),
    ("time.time", "the wall clock (`time.time`)"),
    ("time.monotonic", "the wall clock (`time.monotonic`)"),
    ("time.perf_counter", "the wall clock (`time.perf_counter`)"),
    ("time.process_time", "the wall clock (`time.process_time`)"),
    ("time.clock_gettime", "the wall clock (`time.clock_gettime`)"),
    ("datetime.datetime.now", "the wall clock (`datetime.now`)"),
    ("datetime.datetime.utcnow", "the wall clock (`datetime.utcnow`)"),
    ("datetime.datetime.today", "the wall clock (`datetime.today`)"),
    ("datetime.date.today", "the wall clock (`date.today`)"),
    ("os.urandom", "OS entropy (`os.urandom`)"),
    ("os.environ", "an environment read (`os.environ`)"),
    ("os.environb", "an environment read (`os.environb`)"),
    ("os.getenv", "an environment read (`os.getenv`)"),
    ("os.getenvb", "an environment read (`os.getenvb`)"),
    ("secrets.", "OS entropy (the `secrets` module)"),
    ("uuid.uuid1", "host state (`uuid.uuid1`)"),
    ("uuid.uuid4", "OS entropy (`uuid.uuid4`)"),
)

#: Call targets that persist or publish a value: feeding them a tainted
#: argument is always a violation.
_SINKS = {
    "repro.store.config_key": "a persistent store key (`config_key`)",
    "repro.store.fingerprint.config_key": (
        "a persistent store key (`config_key`)"
    ),
    "repro.obs.RunManifest": "a run manifest (`RunManifest`)",
    "repro.obs.RunManifest.build": "a run manifest (`RunManifest.build`)",
    "repro.obs.manifest.RunManifest": "a run manifest (`RunManifest`)",
    "repro.obs.manifest.RunManifest.build": (
        "a run manifest (`RunManifest.build`)"
    ),
}


def source_origin(canonical: str) -> Optional[str]:
    """Human-readable origin when ``canonical`` is a taint source."""
    for prefix, origin in _SOURCE_PREFIXES:
        if canonical == prefix.rstrip(".") or canonical.startswith(prefix):
            return origin
    return None


# ----------------------------------------------------------------------
# Relative-import-aware alias resolution
# ----------------------------------------------------------------------

def collect_aliases(
    tree: ast.Module, dotted_module: Optional[str], is_init: bool = False
) -> Dict[str, str]:
    """Local name → canonical dotted path, resolving relative imports.

    Unlike the per-file alias map in :mod:`repro.analysis.checkers`
    (which skips relative imports because it has no idea where the file
    lives), this variant knows the module's dotted name, so
    ``from ..obs import RunManifest`` inside ``repro.faults.chaos``
    resolves to ``repro.obs.RunManifest`` and can match sink paths.
    """
    package_parts: List[str] = []
    if dotted_module is not None:
        parts = dotted_module.split(".")
        package_parts = parts if is_init else parts[:-1]
    names: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    names[alias.asname] = alias.name
                else:
                    head = alias.name.split(".")[0]
                    names[head] = head
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                if len(package_parts) < node.level - 1:
                    continue  # escapes the linted tree; unresolvable
                base_parts = package_parts[
                    : len(package_parts) - (node.level - 1)
                ]
                if node.module:
                    base_parts = base_parts + node.module.split(".")
                base = ".".join(base_parts)
            else:
                base = node.module or ""
            if not base:
                continue
            for alias in node.names:
                local = alias.asname or alias.name
                names[local] = f"{base}.{alias.name}"
    return names


def resolve(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Canonical dotted path of a Name/Attribute chain, if import-bound."""
    if isinstance(node, ast.Name):
        return aliases.get(node.id)
    if isinstance(node, ast.Attribute):
        base = resolve(node.value, aliases)
        if base is None:
            return None
        return f"{base}.{node.attr}"
    return None


# ----------------------------------------------------------------------
# The intraprocedural pass
# ----------------------------------------------------------------------

class _ScopeTaint:
    """Taint state while walking one function (or the module body)."""

    def __init__(
        self,
        module: ModuleInfo,
        aliases: Dict[str, str],
        function: Optional[str],
    ) -> None:
        self.module = module
        self.aliases = aliases
        self.function = function
        self.tainted: Dict[str, str] = {}  # name -> origin description
        self.candidates: List[Dict[str, object]] = []

    # -- expression-level taint ----------------------------------------
    def expr_origin(self, expr: Optional[ast.AST]) -> Optional[str]:
        """Origin description if ``expr`` carries taint, else ``None``."""
        if expr is None:
            return None
        for node in ast.walk(expr):
            if isinstance(node, (ast.Name, ast.Attribute)):
                canonical = resolve(node, self.aliases)
                if canonical is not None:
                    origin = source_origin(canonical)
                    if origin is not None:
                        return origin
            if isinstance(node, ast.Name) and node.id in self.tainted:
                return self.tainted[node.id]
        return None

    # -- sinks ---------------------------------------------------------
    def scan_sinks(self, root: ast.AST) -> None:
        for node in ast.walk(root):
            if not isinstance(node, ast.Call):
                continue
            canonical = resolve(node.func, self.aliases)
            if canonical is None or canonical not in _SINKS:
                continue
            for arg in [*node.args, *(kw.value for kw in node.keywords)]:
                origin = self.expr_origin(arg)
                if origin is not None:
                    self.candidates.append(
                        {
                            "kind": "sink",
                            "line": node.lineno,
                            "snippet": self.module.snippet(node.lineno),
                            "origin": origin,
                            "sink": _SINKS[canonical],
                            "function": self.function,
                        }
                    )
                    break

    # -- statement walk ------------------------------------------------
    def _assign_names(self, target: ast.AST) -> List[str]:
        names: List[str] = []
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                names.append(node.id)
        return names

    def run(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            # Nested function/class bodies are separate scopes (each
            # function gets its own pass in :func:`taint_candidates`).
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if isinstance(stmt, (ast.If, ast.While)):
                self.scan_sinks(stmt.test)
                self.run(stmt.body)
                self.run(stmt.orelse)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self.scan_sinks(stmt.iter)
                origin = self.expr_origin(stmt.iter)
                if origin is not None:
                    for name in self._assign_names(stmt.target):
                        self.tainted[name] = origin
                self.run(stmt.body)
                self.run(stmt.orelse)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    self.scan_sinks(item.context_expr)
                    if item.optional_vars is not None:
                        origin = self.expr_origin(item.context_expr)
                        if origin is not None:
                            for name in self._assign_names(
                                item.optional_vars
                            ):
                                self.tainted[name] = origin
                self.run(stmt.body)
            elif isinstance(stmt, ast.Try):
                self.run(stmt.body)
                for handler in stmt.handlers:
                    self.run(handler.body)
                self.run(stmt.orelse)
                self.run(stmt.finalbody)
            elif isinstance(stmt, ast.Assign):
                self.scan_sinks(stmt)
                self._apply_assign(stmt.targets, stmt.value)
            elif isinstance(stmt, ast.AnnAssign):
                self.scan_sinks(stmt)
                if stmt.value is not None:
                    self._apply_assign([stmt.target], stmt.value)
            elif isinstance(stmt, ast.AugAssign):
                self.scan_sinks(stmt)
                origin = self.expr_origin(stmt.value)
                if origin is not None:
                    for name in self._assign_names(stmt.target):
                        self.tainted[name] = origin
            elif isinstance(stmt, ast.Return):
                self.scan_sinks(stmt)
                origin = self.expr_origin(stmt.value)
                if origin is not None and self.function is not None:
                    line = stmt.lineno
                    self.candidates.append(
                        {
                            "kind": "return",
                            "line": line,
                            "snippet": self.module.snippet(line),
                            "origin": origin,
                            "function": self.function,
                        }
                    )
            else:
                # Simple statement (Expr, Assert, Raise, Delete, ...):
                # no nested statement lists, safe to walk whole.
                self.scan_sinks(stmt)

    def _apply_assign(
        self, targets: List[ast.AST], value: ast.AST
    ) -> None:
        origin = self.expr_origin(value)
        for target in targets:
            for name in self._assign_names(target):
                if origin is not None:
                    self.tainted[name] = origin
                else:
                    self.tainted.pop(name, None)


def taint_candidates(
    module: ModuleInfo, dotted_module: Optional[str]
) -> List[Dict[str, object]]:
    """All taint candidates for one parsed file (JSON-serialisable).

    The pass never flags files under ``perf``/``obs``/``analysis`` —
    those layers *are* the sanctioned consumers of wall-clock and
    environment state.
    """
    exempt_heads = ("perf.py", "obs/", "analysis/", "cli.py")
    if module.path.startswith(exempt_heads):
        return []
    is_init = module.path.endswith("__init__.py")
    aliases = collect_aliases(module.tree, dotted_module, is_init)
    candidates: List[Dict[str, object]] = []

    module_scope = _ScopeTaint(module, aliases, function=None)
    module_scope.run(
        [
            stmt
            for stmt in module.tree.body
            if not isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            )
        ]
    )
    candidates.extend(module_scope.candidates)

    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scope = _ScopeTaint(module, aliases, function=node.name)
            scope.run(node.body)
            candidates.extend(scope.candidates)
    return candidates
