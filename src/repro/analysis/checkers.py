"""Module-level domain checkers: RL101-RL104, RL106 and RL107.

Each checker resolves names through a per-module import-alias map, so
``import numpy as np`` / ``from numpy import random as npr`` / ``from
time import perf_counter`` are all seen as their canonical dotted path
before matching — the rules fire on *semantics*, not on spelling.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

from .base import (
    Finding,
    ModuleChecker,
    ModuleInfo,
    Rule,
    register_checker,
)

__all__ = [
    "RngDisciplineChecker",
    "SimTimePurityChecker",
    "StoreAtomicIoChecker",
    "UnitSuffixChecker",
    "FloatEqualityChecker",
    "WallClockDisciplineChecker",
    "unit_suffix",
]


# ----------------------------------------------------------------------
# Import-alias resolution
# ----------------------------------------------------------------------

class _ImportAliases(ast.NodeVisitor):
    """Map local names to the canonical dotted module path they bind."""

    def __init__(self) -> None:
        self.names: Dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.asname:
                self.names[alias.asname] = alias.name
            else:
                head = alias.name.split(".")[0]
                self.names[head] = head

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level or node.module is None:  # relative imports: local
            return
        for alias in node.names:
            local = alias.asname or alias.name
            self.names[local] = f"{node.module}.{alias.name}"


def _collect_aliases(tree: ast.Module) -> Dict[str, str]:
    visitor = _ImportAliases()
    visitor.visit(tree)
    return visitor.names


def _resolve(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Canonical dotted path of a Name/Attribute chain, if import-bound."""
    if isinstance(node, ast.Name):
        return aliases.get(node.id)
    if isinstance(node, ast.Attribute):
        base = _resolve(node.value, aliases)
        if base is None:
            return None
        return f"{base}.{node.attr}"
    return None


# ----------------------------------------------------------------------
# RL101 — rng discipline
# ----------------------------------------------------------------------

#: numpy.random members that construct generators from explicit seeds
#: (types and bit generators) — allowed anywhere, e.g. in annotations.
_NP_RANDOM_ALLOWED = {
    "Generator",
    "BitGenerator",
    "SeedSequence",
    "PCG64",
    "PCG64DXSM",
    "MT19937",
    "Philox",
    "SFC64",
}

#: Files where raw generator construction is the whole point.
_RNG_ALLOWED_FILES = {"sim/random.py"}


@register_checker
class RngDisciplineChecker(ModuleChecker):
    """RL101: all randomness flows through the seeded stream registry.

    ``np.random.default_rng``, the legacy module-level samplers
    (``np.random.normal`` etc., ``np.random.RandomState``) and the
    stdlib :mod:`random` module all mint hidden, unregistered entropy.
    That silently breaks the scalar↔batch lockstep-equivalence
    contract and the fork-per-shard independence of campaign workers —
    every generator must be an injected
    :class:`numpy.random.Generator` drawn from a named
    :class:`repro.sim.random.RandomStreams` stream.
    """

    rule = Rule(
        id="RL101",
        name="rng-discipline",
        summary=(
            "randomness must come from the seeded stream registry "
            "(repro.sim.random), never module-level RNGs"
        ),
    )

    def check_module(self, module: ModuleInfo) -> List[Finding]:
        if module.path in _RNG_ALLOWED_FILES:
            return []
        aliases = _collect_aliases(module.tree)
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                findings.extend(self._check_import(module, node))
            elif isinstance(node, ast.Attribute):
                canonical = _resolve(node, aliases)
                if canonical is None:
                    continue
                message = self._violation(canonical)
                if message is not None:
                    findings.append(
                        module.finding(self.rule.id, node, message)
                    )
        return findings

    def _check_import(self, module: ModuleInfo, node: ast.AST) -> List[Finding]:
        names: List[str] = []
        if isinstance(node, ast.Import):
            names = [alias.name for alias in node.names]
        elif isinstance(node, ast.ImportFrom) and not node.level:
            if node.module == "random":
                names = ["random"]
            elif node.module in ("numpy.random", "numpy"):
                names = [
                    f"{node.module}.{alias.name}" for alias in node.names
                ]
        out = []
        for name in names:
            message = None
            if name == "random" or name.startswith("random."):
                message = (
                    "stdlib 'random' is unseeded and unregistered; draw "
                    "from repro.sim.random.RandomStreams instead"
                )
            elif name.startswith("numpy.random."):
                message = self._violation(name)
            if message is not None:
                out.append(module.finding(self.rule.id, node, message))
        return out

    @staticmethod
    def _violation(canonical: str) -> Optional[str]:
        if canonical == "random" or canonical.startswith("random."):
            return (
                "stdlib 'random' is unseeded and unregistered; draw from "
                "repro.sim.random.RandomStreams instead"
            )
        if canonical.startswith("numpy.random."):
            member = canonical.split(".")[2]
            if member in _NP_RANDOM_ALLOWED:
                return None
            if member == "default_rng":
                return (
                    "np.random.default_rng mints an unregistered "
                    "generator; inject a Generator from "
                    "repro.sim.random.RandomStreams instead"
                )
            return (
                f"module-level np.random.{member} bypasses the seeded "
                "stream registry; use an injected Generator from "
                "repro.sim.random.RandomStreams"
            )
        return None


# ----------------------------------------------------------------------
# RL102 — simulated-time purity
# ----------------------------------------------------------------------

#: Wall-clock sources forbidden inside simulation packages.
_WALL_CLOCKS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: Packages whose code runs on the simulated clock.
_SIM_PACKAGES = ("sim/", "net/", "phy/", "channel/", "mac/")

#: Files allowed to read wall clocks (performance instrumentation).
_TIME_ALLOWED_FILES = {"perf.py"}


@register_checker
class SimTimePurityChecker(ModuleChecker):
    """RL102: simulated time never touches wall-clock time.

    Inside ``sim/``, ``net/``, ``phy/``, ``channel/`` and ``mac/``,
    time is the kernel's ``now_s`` — reading ``time.time`` or friends
    there couples results to host speed and destroys replayability.
    Performance telemetry belongs in :mod:`repro.perf` (allowlisted) or
    behind an explicit per-line suppression.
    """

    rule = Rule(
        id="RL102",
        name="sim-time-purity",
        summary=(
            "simulation packages must use the simulated clock, never "
            "time.time/monotonic/perf_counter or datetime.now"
        ),
    )

    def check_module(self, module: ModuleInfo) -> List[Finding]:
        if module.path in _TIME_ALLOWED_FILES:
            return []
        if not module.path.startswith(_SIM_PACKAGES):
            return []
        aliases = _collect_aliases(module.tree)
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            canonical: Optional[str] = None
            if isinstance(node, ast.Attribute):
                canonical = _resolve(node, aliases)
            elif isinstance(node, ast.Name):
                canonical = aliases.get(node.id)
            if canonical in _WALL_CLOCKS:
                findings.append(
                    module.finding(
                        self.rule.id,
                        node,
                        f"wall-clock read ({canonical}) inside simulation "
                        "code; use the kernel's simulated now_s (or move "
                        "instrumentation to repro.perf)",
                    )
                )
        return findings


# ----------------------------------------------------------------------
# RL106 — wall-clock discipline (instrumentation outside sim packages)
# ----------------------------------------------------------------------

#: Modules allowed to read wall clocks directly: the telemetry layer
#: that defines the sanctioned ``repro.perf.wall_clock`` alias, and the
#: observability package built on top of it.
_CLOCK_ALLOWED_FILES = {"perf.py"}
_CLOCK_ALLOWED_PREFIXES = ("obs/",)


@register_checker
class WallClockDisciplineChecker(ModuleChecker):
    """RL106: all wall-clock reads flow through ``repro.perf.wall_clock``.

    RL102 keeps wall clocks out of the *simulation* packages entirely;
    RL106 covers everything else.  Instrumentation code may time itself,
    but only through the sanctioned :data:`repro.perf.wall_clock` alias
    (or a :class:`~repro.perf.StageTimer` / tracer span built on it) —
    a bare ``time.perf_counter()`` is untraceable by the observability
    layer and invisible to run manifests.  Only :mod:`repro.perf`
    itself and the :mod:`repro.obs` package touch :mod:`time` directly.
    """

    rule = Rule(
        id="RL106",
        name="wall-clock-discipline",
        summary=(
            "wall-clock reads outside repro.perf / repro.obs must use "
            "repro.perf.wall_clock, never bare time.perf_counter et al."
        ),
    )

    def check_module(self, module: ModuleInfo) -> List[Finding]:
        if module.path in _CLOCK_ALLOWED_FILES:
            return []
        if module.path.startswith(_CLOCK_ALLOWED_PREFIXES):
            return []
        if module.path.startswith(_SIM_PACKAGES):
            return []  # RL102 territory: wall clocks are banned outright
        aliases = _collect_aliases(module.tree)
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            canonical: Optional[str] = None
            if isinstance(node, ast.Attribute):
                canonical = _resolve(node, aliases)
            elif isinstance(node, ast.Name):
                canonical = aliases.get(node.id)
            if canonical in _WALL_CLOCKS:
                findings.append(
                    module.finding(
                        self.rule.id,
                        node,
                        f"bare wall-clock read ({canonical}); use "
                        "repro.perf.wall_clock (or a StageTimer/span) so "
                        "the observability layer can account for it",
                    )
                )
        return findings


# ----------------------------------------------------------------------
# RL107 — store atomic I/O
# ----------------------------------------------------------------------

#: The persistent result store's package (module paths are src/repro-
#: relative POSIX).
_STORE_PREFIX = "store/"

#: The one module under the store allowed to open files for writing:
#: it implements the tmp+rename discipline everything else must use.
_STORE_WRITE_ALLOWED_FILES = {"store/atomic.py"}

#: Low-level calls that create/rename writable files or descriptors.
_OS_WRITE_CALLS = {"os.open", "os.fdopen", "os.replace", "os.rename"}

#: Path methods that write through a filename in one call.
_PATH_WRITE_METHODS = {"write_text", "write_bytes"}


def _open_mode(node: ast.Call, mode_position: int) -> Optional[str]:
    """The mode of an ``open``-style call: a constant string, ``"r"``
    when omitted, or ``None`` when dynamic (unresolvable)."""
    mode: Optional[ast.AST] = None
    if len(node.args) > mode_position:
        mode = node.args[mode_position]
    else:
        for keyword in node.keywords:
            if keyword.arg == "mode":
                mode = keyword.value
                break
    if mode is None:
        return "r"
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None


def _is_write_mode(mode: Optional[str]) -> bool:
    # A dynamic mode counts as a write: the safe direction for a rule
    # guarding crash-safety.
    if mode is None:
        return True
    return any(flag in mode for flag in "wax+")


@register_checker
class StoreAtomicIoChecker(ModuleChecker):
    """RL107: every store write goes through ``repro.store.atomic``.

    The store's crash-safety argument — a reader sees the old entry,
    the new entry, or nothing, never a torn file — holds only while
    every byte written under :mod:`repro.store` flows through the
    tmp+rename helpers in ``store/atomic.py``.  A direct write-mode
    ``open()``, ``os.open``, or ``Path.write_text`` anywhere else in
    the package reintroduces the torn-file window the helper exists to
    close.  Reads stay unrestricted (rename atomicity makes any
    visible file whole).
    """

    rule = Rule(
        id="RL107",
        name="store-atomic-io",
        summary=(
            "file writes under repro.store must go through the "
            "atomic-write helpers in store/atomic.py, never direct "
            "open()/os.open/Path.write_* calls"
        ),
    )

    def check_module(self, module: ModuleInfo) -> List[Finding]:
        if not module.path.startswith(_STORE_PREFIX):
            return []
        if module.path in _STORE_WRITE_ALLOWED_FILES:
            return []
        aliases = _collect_aliases(module.tree)
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            message = self._violation(node, aliases)
            if message is not None:
                findings.append(module.finding(self.rule.id, node, message))
        return findings

    @staticmethod
    def _violation(
        node: ast.Call, aliases: Dict[str, str]
    ) -> Optional[str]:
        func = node.func
        if (
            isinstance(func, ast.Name)
            and func.id == "open"
            and func.id not in aliases
        ):
            # Builtin open(path, mode): mode is the second positional.
            if _is_write_mode(_open_mode(node, mode_position=1)):
                return (
                    "write-mode open() under repro.store; use "
                    "atomic_write_bytes/atomic_write_text from "
                    "repro.store.atomic"
                )
            return None
        canonical = _resolve(func, aliases)
        if canonical in _OS_WRITE_CALLS:
            return (
                f"{canonical} under repro.store bypasses the tmp+rename "
                "discipline; use repro.store.atomic"
            )
        if isinstance(func, ast.Attribute) and canonical is None:
            if func.attr in _PATH_WRITE_METHODS:
                return (
                    f".{func.attr}() under repro.store bypasses the "
                    "tmp+rename discipline; use repro.store.atomic"
                )
            if func.attr == "open" and _is_write_mode(
                # Path.open(mode=...): mode is the first positional.
                _open_mode(node, mode_position=0)
            ):
                return (
                    "write-mode .open() under repro.store; use "
                    "atomic_write_bytes/atomic_write_text from "
                    "repro.store.atomic"
                )
        return None


# ----------------------------------------------------------------------
# RL103 — unit-suffix discipline
# ----------------------------------------------------------------------

#: Logarithmic (decibel-family) suffixes: additively compatible with
#: each other (dBm + dBi = dBm), never directly with linear units.
_DB_SUFFIXES = ("_dbm", "_dbi", "_db")

#: Linear unit suffixes, longest first so ``_mbps`` wins over ``_bps``
#: and ``_ms`` over ``_s``.
_LINEAR_SUFFIXES = (
    "_bytes", "_byte", "_bits", "_bit",
    "_mbps", "_kbps", "_gbps", "_bps",
    "_mps", "_kmh",
    "_ghz", "_mhz", "_khz", "_hz",
    "_mah", "_wh", "_mw",
    "_deg", "_rad",
    "_gb", "_mb", "_kb",
    "_km", "_mm", "_um",
    "_ms", "_us", "_ns",
    "_m", "_s", "_w", "_j",
)

#: Converters whose presence in an expression legitimises db↔linear
#: mixing.
_CONVERTERS = {
    "db_to_linear", "linear_to_db", "to_db", "from_db", "db2lin", "lin2db",
}

#: Substrings marking a config field as dimensionless (no suffix needed).
_DIMENSIONLESS_MARKERS = (
    "probability", "prob", "fraction", "ratio", "factor", "efficiency",
    "exponent", "level", "weight", "coeff", "alpha", "beta", "gamma",
    "count", "index", "streak", "threshold", "seed", "size", "gain",
)


def unit_suffix(name: str) -> Optional[str]:
    """Canonical unit suffix of an identifier, or ``None`` if unsuffixed.

    Names containing ``_per_`` are rates across dimensions (e.g.
    ``slope_db_per_mps``) and classify as ``None`` — their dimension is
    not captured by the trailing token alone.
    """
    lowered = name.lower()
    if "_per_" in lowered:
        return None
    for suffix in _DB_SUFFIXES + _LINEAR_SUFFIXES:
        if lowered.endswith(suffix):
            return suffix
    return None


def _is_db(suffix: Optional[str]) -> bool:
    return suffix in _DB_SUFFIXES


def _operand_suffix(node: ast.AST) -> Optional[str]:
    """Unit suffix of a BinOp operand (terminal Name/Attribute only)."""
    if isinstance(node, ast.Name):
        return unit_suffix(node.id)
    if isinstance(node, ast.Attribute):
        return unit_suffix(node.attr)
    return None


def _calls_converter(node: ast.AST) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            func = child.func
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            if name in _CONVERTERS:
                return True
    return False


def _is_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


@register_checker
class UnitSuffixChecker(ModuleChecker):
    """RL103: dB and linear quantities never mix without conversion.

    The throughput law ``s(d)`` and the link budget live entirely in
    suffixed units (``_db``, ``_dbm``, ``_m``, ``_mbps`` ...).  Adding
    a dB name to a metre name, or multiplying dB by a linear quantity,
    is dimensionally meaningless and historically the most common way
    reproductions drift from the paper.  Config dataclasses must also
    suffix every float field so call sites can't guess units.
    """

    rule = Rule(
        id="RL103",
        name="unit-suffix-discipline",
        summary=(
            "no arithmetic mixing _db/_dbm with linear-suffixed names "
            "without conversion; config floats carry unit suffixes"
        ),
    )

    def check_module(self, module: ModuleInfo) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.BinOp):
                findings.extend(self._check_binop(module, node))
            elif isinstance(node, ast.ClassDef):
                findings.extend(self._check_config(module, node))
        return findings

    def _check_binop(
        self, module: ModuleInfo, node: ast.BinOp
    ) -> List[Finding]:
        if not isinstance(node.op, (ast.Add, ast.Sub, ast.Mult, ast.Div)):
            return []
        left = _operand_suffix(node.left)
        right = _operand_suffix(node.right)
        if left is None or right is None:
            return []
        left_db, right_db = _is_db(left), _is_db(right)
        if left_db != right_db:
            # dB mixed with a linear unit, any operator.
            if _calls_converter(node):
                return []
            db_name = left if left_db else right
            lin_name = right if left_db else left
            return [
                module.finding(
                    self.rule.id,
                    node,
                    f"arithmetic mixes dB-domain '{db_name}' with linear "
                    f"'{lin_name}' without db_to_linear/linear_to_db",
                )
            ]
        if left_db and right_db:
            return []  # dB family is additively closed (dBm + dBi = dBm)
        if isinstance(node.op, (ast.Add, ast.Sub)) and left != right:
            return [
                module.finding(
                    self.rule.id,
                    node,
                    f"adding/subtracting mismatched units "
                    f"'{left}' and '{right}'",
                )
            ]
        return []

    def _check_config(
        self, module: ModuleInfo, node: ast.ClassDef
    ) -> List[Finding]:
        if not node.name.endswith("Config") or not _is_dataclass(node):
            return []
        findings = []
        for stmt in node.body:
            if not isinstance(stmt, ast.AnnAssign):
                continue
            if not isinstance(stmt.target, ast.Name):
                continue
            if not (
                isinstance(stmt.annotation, ast.Name)
                and stmt.annotation.id == "float"
            ):
                continue
            if stmt.value is None or not isinstance(stmt.value, ast.Constant):
                continue
            if not isinstance(stmt.value.value, (int, float)):
                continue
            name = stmt.target.id
            lowered = name.lower()
            if unit_suffix(name) is not None or "_per_" in lowered:
                continue
            if any(marker in lowered for marker in _DIMENSIONLESS_MARKERS):
                continue
            findings.append(
                module.finding(
                    self.rule.id,
                    stmt,
                    f"config field '{node.name}.{name}' defaults a "
                    "physical quantity without a unit suffix "
                    "(_db, _m, _s, _mbps, ...)",
                )
            )
        return findings


# ----------------------------------------------------------------------
# RL104 — float equality
# ----------------------------------------------------------------------

@register_checker
class FloatEqualityChecker(ModuleChecker):
    """RL104: no exact ``==``/``!=`` against float literals.

    Measurement pipelines accumulate rounding error; comparing against
    ``0.0`` (or any float literal) makes behaviour depend on the exact
    operation order the optimiser or a refactor happens to produce.
    Use ``math.isclose`` or an explicit, documented tolerance.
    (Comparisons with ``float("inf")`` are exact by IEEE-754 and are
    not flagged — the literal heuristic only matches float constants.)
    """

    rule = Rule(
        id="RL104",
        name="float-equality",
        summary=(
            "no ==/!= comparisons against float literals; use "
            "math.isclose or a documented tolerance"
        ),
    )

    def check_module(self, module: ModuleInfo) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, lhs, rhs in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                for side in (lhs, rhs):
                    if (
                        isinstance(side, ast.Constant)
                        and type(side.value) is float
                    ):
                        findings.append(
                            module.finding(
                                self.rule.id,
                                node,
                                "exact float comparison against "
                                f"{side.value!r}; use math.isclose or a "
                                "documented tolerance",
                            )
                        )
                        break
        return findings
