"""RL105 — scalar↔batch twin parity.

PR 2 established the lockstep contract: every ``Batch*`` engine class
reproduces its scalar twin bit for bit at ``n_replicas == 1``.  That
contract only holds while the twins expose the *same* public API — a
method added to the scalar class but not mirrored in the batch class
silently forks their behaviour, and no runtime test notices until the
divergent path is exercised.  RL105 turns the contract into a lint
rule:

* every class named ``Batch<X>`` with a scalar class ``<X>`` anywhere
  in the tree must mirror each of ``<X>``'s public methods, either
  under the same name or with a ``_batch``/``_array`` suffix
  (``sample_snr_db`` → ``sample_snr_db_batch``);
* mirrored signatures must agree parameter-for-parameter, modulo the
  array dimension: the batch side may add the batch-only parameters
  ``n_replicas``, ``telemetry`` and ``parallel``, and may pluralise a
  quantity (``scenario`` → ``scenarios``, ``distance_m`` →
  ``distances_m``); everything else must match in name and order
  (annotations and defaults are free to change from scalar to array);
* within a single class, a ``<m>_array``/``<m>_batch`` method whose
  scalar base ``<m>`` exists (e.g. :meth:`ErrorModel.per` /
  :meth:`ErrorModel.per_array`) is held to the same signature rule.

Classes whose scalar half would be ambiguous (several same-named
classes in different packages) are skipped rather than guessed.

The checker consumes the class/method surface recorded in each
:class:`~repro.analysis.graph.ModuleSummary` — never raw ASTs — so the
incremental runner can drive it entirely from cached summaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .base import Finding, Rule, TreeChecker, register_checker
from .graph import ClassSummary, MethodSummary, Program

__all__ = ["BatchTwinParityChecker", "ParityPair"]

#: Parameters the batch side may add anywhere in the signature
#: (replica count, perf instrumentation, fan-out control).
_BATCH_ONLY_PARAMS = {"n_replicas", "telemetry", "parallel"}

#: Suffixes under which a scalar method may be mirrored.
_MIRROR_SUFFIXES = ("", "_batch", "_array")


@dataclass(frozen=True)
class ParityPair:
    """One scalar↔batch pairing RL105 verified (for reporting)."""

    kind: str  # "class" or "method"
    scalar: str  # e.g. "net/link.py::WirelessLink"
    batch: str  # e.g. "net/batchlink.py::BatchWirelessLink"

    def to_dict(self) -> Dict[str, str]:
        return {"kind": self.kind, "scalar": self.scalar, "batch": self.batch}


@dataclass
class _ClassInfo:
    path: str
    summary: ClassSummary

    @property
    def methods(self) -> Dict[str, MethodSummary]:
        return self.summary.methods


def _strip_batch_only(params: List[str]) -> List[str]:
    return [p for p in params if p not in _BATCH_ONLY_PARAMS]


def _array_names(param: str) -> "set[str]":
    """Accepted batch-side spellings of a scalar parameter name.

    The array dimension may pluralise the quantity: ``scenario`` →
    ``scenarios``, and for unit-suffixed names the plural lands before
    the suffix (``distance_m`` → ``distances_m``).
    """
    names = {param, param + "s"}
    if "_" in param:
        stem, _, suffix = param.rpartition("_")
        if stem:
            names.add(f"{stem}s_{suffix}")
    return names


def _params_match(scalar_params: List[str], batch_params: List[str]) -> bool:
    """Positional name-for-name match, modulo the array dimension."""
    if len(scalar_params) != len(batch_params):
        return False
    return all(
        batch in _array_names(scalar)
        for scalar, batch in zip(scalar_params, batch_params)
    )


@register_checker
class BatchTwinParityChecker(TreeChecker):
    """RL105: every ``Batch*`` class mirrors its scalar twin's API."""

    rule = Rule(
        id="RL105",
        name="batch-twin-parity",
        summary=(
            "Batch* classes mirror their scalar twin's public methods "
            "and signatures modulo the array dimension"
        ),
    )

    def __init__(self) -> None:
        #: Pairings verified by the last :meth:`check_program` run.
        self.pairs: List[ParityPair] = []

    # ------------------------------------------------------------------
    def check_program(self, program: Program) -> List[Finding]:
        classes = self._collect_classes(program)
        findings: List[Finding] = []
        self.pairs = []
        for name, infos in sorted(classes.items()):
            for info in infos:
                findings.extend(self._check_method_twins(name, info))
                if name.startswith("Batch") and len(name) > len("Batch"):
                    findings.extend(
                        self._check_class_twin(name, info, classes)
                    )
        return findings

    # ------------------------------------------------------------------
    @staticmethod
    def _collect_classes(program: Program) -> Dict[str, List[_ClassInfo]]:
        classes: Dict[str, List[_ClassInfo]] = {}
        for path in sorted(program.summaries):
            for cls in program.summaries[path].classes:
                classes.setdefault(cls.name, []).append(
                    _ClassInfo(path=path, summary=cls)
                )
        return classes

    @staticmethod
    def _pick_scalar(
        batch: _ClassInfo, candidates: List[_ClassInfo]
    ) -> Optional[_ClassInfo]:
        """The scalar twin: same module, then same package, else unique."""
        same_module = [c for c in candidates if c.path == batch.path]
        if len(same_module) == 1:
            return same_module[0]
        package = batch.path.rsplit("/", 1)[0] if "/" in batch.path else ""
        same_package = [
            c
            for c in candidates
            if (c.path.rsplit("/", 1)[0] if "/" in c.path else "") == package
        ]
        if len(same_package) == 1:
            return same_package[0]
        if len(candidates) == 1:
            return candidates[0]
        return None

    # ------------------------------------------------------------------
    def _check_class_twin(
        self,
        batch_name: str,
        batch: _ClassInfo,
        classes: Dict[str, List[_ClassInfo]],
    ) -> List[Finding]:
        scalar_name = batch_name[len("Batch"):]
        candidates = classes.get(scalar_name)
        if not candidates:
            return []  # no scalar twin anywhere: not a twin pair
        scalar = self._pick_scalar(batch, candidates)
        if scalar is None:
            return []
        self.pairs.append(
            ParityPair(
                kind="class",
                scalar=f"{scalar.path}::{scalar_name}",
                batch=f"{batch.path}::{batch_name}",
            )
        )
        findings: List[Finding] = []
        for method, scalar_method in sorted(scalar.methods.items()):
            explicit_init = method == "__init__"
            if method.startswith("_") and not explicit_init:
                continue
            if explicit_init and "__init__" not in batch.methods:
                continue  # batch may rely on @dataclass-generated init
            mirror = self._find_mirror(method, batch)
            if mirror is None:
                findings.append(
                    Finding(
                        rule=self.rule.id,
                        path=batch.path,
                        line=batch.summary.line,
                        message=(
                            f"{batch_name} does not mirror scalar twin "
                            f"method {scalar_name}.{method}() "
                            f"(expected '{method}', '{method}_batch' or "
                            f"'{method}_array')"
                        ),
                        snippet=batch.summary.snippet,
                    )
                )
                continue
            mirror_name, batch_method = mirror
            stripped = _strip_batch_only(batch_method.params)
            if not _params_match(scalar_method.params, stripped):
                findings.append(
                    Finding(
                        rule=self.rule.id,
                        path=batch.path,
                        line=batch_method.line,
                        message=(
                            f"{batch_name}.{mirror_name}"
                            f"({', '.join(stripped)}) does not match "
                            f"scalar twin {scalar_name}.{method}"
                            f"({', '.join(scalar_method.params)}) "
                            "modulo the array dimension"
                        ),
                        snippet=batch_method.snippet,
                    )
                )
        return findings

    @staticmethod
    def _find_mirror(
        method: str, batch: _ClassInfo
    ) -> "Optional[tuple[str, MethodSummary]]":
        for suffix in _MIRROR_SUFFIXES:
            candidate = method + suffix
            if candidate in batch.methods:
                return candidate, batch.methods[candidate]
        return None

    # ------------------------------------------------------------------
    def _check_method_twins(
        self, class_name: str, info: _ClassInfo
    ) -> List[Finding]:
        """``m_array``/``m_batch`` methods must match their base ``m``."""
        findings: List[Finding] = []
        for method, batch_method in sorted(info.methods.items()):
            for suffix in ("_array", "_batch"):
                if not method.endswith(suffix):
                    continue
                base = method[: -len(suffix)]
                if not base or base not in info.methods:
                    continue
                scalar_method = info.methods[base]
                self.pairs.append(
                    ParityPair(
                        kind="method",
                        scalar=f"{info.path}::{class_name}.{base}",
                        batch=f"{info.path}::{class_name}.{method}",
                    )
                )
                stripped = _strip_batch_only(batch_method.params)
                if not _params_match(scalar_method.params, stripped):
                    findings.append(
                        Finding(
                            rule=self.rule.id,
                            path=info.path,
                            line=batch_method.line,
                            message=(
                                f"{class_name}.{method}"
                                f"({', '.join(stripped)}) does not "
                                f"match its scalar base "
                                f"{class_name}.{base}"
                                f"({', '.join(scalar_method.params)}) "
                                "modulo the array dimension"
                            ),
                            snippet=batch_method.snippet,
                        )
                    )
        return findings
