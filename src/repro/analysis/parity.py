"""RL105 — scalar↔batch twin parity.

PR 2 established the lockstep contract: every ``Batch*`` engine class
reproduces its scalar twin bit for bit at ``n_replicas == 1``.  That
contract only holds while the twins expose the *same* public API — a
method added to the scalar class but not mirrored in the batch class
silently forks their behaviour, and no runtime test notices until the
divergent path is exercised.  RL105 turns the contract into a lint
rule:

* every class named ``Batch<X>`` with a scalar class ``<X>`` anywhere
  in the tree must mirror each of ``<X>``'s public methods, either
  under the same name or with a ``_batch``/``_array`` suffix
  (``sample_snr_db`` → ``sample_snr_db_batch``);
* mirrored signatures must agree parameter-for-parameter, modulo the
  array dimension: the batch side may add the batch-only parameters
  ``n_replicas``, ``telemetry`` and ``parallel``, and may pluralise a
  quantity (``scenario`` → ``scenarios``, ``distance_m`` →
  ``distances_m``); everything else must match in name and order
  (annotations and defaults are free to change from scalar to array);
* within a single class, a ``<m>_array``/``<m>_batch`` method whose
  scalar base ``<m>`` exists (e.g. :meth:`ErrorModel.per` /
  :meth:`ErrorModel.per_array`) is held to the same signature rule.

Classes whose scalar half would be ambiguous (several same-named
classes in different packages) are skipped rather than guessed.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .base import Finding, ModuleInfo, Rule, TreeChecker, register_checker

__all__ = ["BatchTwinParityChecker", "ParityPair"]

#: Parameters the batch side may add anywhere in the signature
#: (replica count, perf instrumentation, fan-out control).
_BATCH_ONLY_PARAMS = {"n_replicas", "telemetry", "parallel"}

#: Suffixes under which a scalar method may be mirrored.
_MIRROR_SUFFIXES = ("", "_batch", "_array")


@dataclass(frozen=True)
class ParityPair:
    """One scalar↔batch pairing RL105 verified (for reporting)."""

    kind: str  # "class" or "method"
    scalar: str  # e.g. "net/link.py::WirelessLink"
    batch: str  # e.g. "net/batchlink.py::BatchWirelessLink"

    def to_dict(self) -> Dict[str, str]:
        return {"kind": self.kind, "scalar": self.scalar, "batch": self.batch}


@dataclass
class _ClassInfo:
    path: str
    module: ModuleInfo
    node: ast.ClassDef
    #: method name -> (parameter names sans self, def line)
    methods: Dict[str, Tuple[List[str], int]]


def _method_params(fn: "ast.FunctionDef | ast.AsyncFunctionDef") -> List[str]:
    args = fn.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if names and names[0] in ("self", "cls"):
        names = names[1:]
    return names


def _class_methods(node: ast.ClassDef) -> Dict[str, Tuple[List[str], int]]:
    methods: Dict[str, Tuple[List[str], int]] = {}
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            methods[stmt.name] = (_method_params(stmt), stmt.lineno)
    return methods


def _strip_batch_only(params: List[str]) -> List[str]:
    return [p for p in params if p not in _BATCH_ONLY_PARAMS]


def _array_names(param: str) -> "set[str]":
    """Accepted batch-side spellings of a scalar parameter name.

    The array dimension may pluralise the quantity: ``scenario`` →
    ``scenarios``, and for unit-suffixed names the plural lands before
    the suffix (``distance_m`` → ``distances_m``).
    """
    names = {param, param + "s"}
    if "_" in param:
        stem, _, suffix = param.rpartition("_")
        if stem:
            names.add(f"{stem}s_{suffix}")
    return names


def _params_match(scalar_params: List[str], batch_params: List[str]) -> bool:
    """Positional name-for-name match, modulo the array dimension."""
    if len(scalar_params) != len(batch_params):
        return False
    return all(
        batch in _array_names(scalar)
        for scalar, batch in zip(scalar_params, batch_params)
    )


@register_checker
class BatchTwinParityChecker(TreeChecker):
    """RL105: every ``Batch*`` class mirrors its scalar twin's API."""

    rule = Rule(
        id="RL105",
        name="batch-twin-parity",
        summary=(
            "Batch* classes mirror their scalar twin's public methods "
            "and signatures modulo the array dimension"
        ),
    )

    def __init__(self) -> None:
        #: Pairings verified by the last :meth:`check_tree` run.
        self.pairs: List[ParityPair] = []

    # ------------------------------------------------------------------
    def check_tree(self, modules: Dict[str, ModuleInfo]) -> List[Finding]:
        classes = self._collect_classes(modules)
        findings: List[Finding] = []
        self.pairs = []
        for name, infos in sorted(classes.items()):
            for info in infos:
                findings.extend(
                    self._check_method_twins(name, info)
                )
                if name.startswith("Batch") and len(name) > len("Batch"):
                    findings.extend(
                        self._check_class_twin(name, info, classes)
                    )
        return findings

    # ------------------------------------------------------------------
    @staticmethod
    def _collect_classes(
        modules: Dict[str, ModuleInfo]
    ) -> Dict[str, List[_ClassInfo]]:
        classes: Dict[str, List[_ClassInfo]] = {}
        for path in sorted(modules):
            module = modules[path]
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    classes.setdefault(node.name, []).append(
                        _ClassInfo(
                            path=path,
                            module=module,
                            node=node,
                            methods=_class_methods(node),
                        )
                    )
        return classes

    @staticmethod
    def _pick_scalar(
        batch: _ClassInfo, candidates: List[_ClassInfo]
    ) -> Optional[_ClassInfo]:
        """The scalar twin: same module, then same package, else unique."""
        same_module = [c for c in candidates if c.path == batch.path]
        if len(same_module) == 1:
            return same_module[0]
        package = batch.path.rsplit("/", 1)[0] if "/" in batch.path else ""
        same_package = [
            c
            for c in candidates
            if (c.path.rsplit("/", 1)[0] if "/" in c.path else "") == package
        ]
        if len(same_package) == 1:
            return same_package[0]
        if len(candidates) == 1:
            return candidates[0]
        return None

    # ------------------------------------------------------------------
    def _check_class_twin(
        self,
        batch_name: str,
        batch: _ClassInfo,
        classes: Dict[str, List[_ClassInfo]],
    ) -> List[Finding]:
        scalar_name = batch_name[len("Batch"):]
        candidates = classes.get(scalar_name)
        if not candidates:
            return []  # no scalar twin anywhere: not a twin pair
        scalar = self._pick_scalar(batch, candidates)
        if scalar is None:
            return []
        self.pairs.append(
            ParityPair(
                kind="class",
                scalar=f"{scalar.path}::{scalar_name}",
                batch=f"{batch.path}::{batch_name}",
            )
        )
        findings: List[Finding] = []
        for method, (scalar_params, _line) in sorted(scalar.methods.items()):
            explicit_init = method == "__init__"
            if method.startswith("_") and not explicit_init:
                continue
            if explicit_init and "__init__" not in batch.methods:
                continue  # batch may rely on @dataclass-generated init
            mirror = self._find_mirror(method, batch)
            if mirror is None:
                findings.append(
                    batch.module.finding(
                        self.rule.id,
                        batch.node,
                        f"{batch_name} does not mirror scalar twin "
                        f"method {scalar_name}.{method}() "
                        f"(expected '{method}', '{method}_batch' or "
                        f"'{method}_array')",
                    )
                )
                continue
            mirror_name, (batch_params, line) = mirror
            stripped = _strip_batch_only(batch_params)
            if not _params_match(scalar_params, stripped):
                anchor = _LineAnchor(line)
                findings.append(
                    batch.module.finding(
                        self.rule.id,
                        anchor,
                        f"{batch_name}.{mirror_name}({', '.join(stripped)}) "
                        f"does not match scalar twin "
                        f"{scalar_name}.{method}({', '.join(scalar_params)}) "
                        "modulo the array dimension",
                    )
                )
        return findings

    @staticmethod
    def _find_mirror(
        method: str, batch: _ClassInfo
    ) -> Optional[Tuple[str, Tuple[List[str], int]]]:
        for suffix in _MIRROR_SUFFIXES:
            candidate = method + suffix
            if candidate in batch.methods:
                return candidate, batch.methods[candidate]
        return None

    # ------------------------------------------------------------------
    def _check_method_twins(
        self, class_name: str, info: _ClassInfo
    ) -> List[Finding]:
        """``m_array``/``m_batch`` methods must match their base ``m``."""
        findings: List[Finding] = []
        for method, (batch_params, line) in sorted(info.methods.items()):
            for suffix in ("_array", "_batch"):
                if not method.endswith(suffix):
                    continue
                base = method[: -len(suffix)]
                if not base or base not in info.methods:
                    continue
                scalar_params, _base_line = info.methods[base]
                self.pairs.append(
                    ParityPair(
                        kind="method",
                        scalar=f"{info.path}::{class_name}.{base}",
                        batch=f"{info.path}::{class_name}.{method}",
                    )
                )
                stripped = _strip_batch_only(batch_params)
                if not _params_match(scalar_params, stripped):
                    findings.append(
                        info.module.finding(
                            self.rule.id,
                            _LineAnchor(line),
                            f"{class_name}.{method}"
                            f"({', '.join(stripped)}) does not match its "
                            f"scalar base {class_name}.{base}"
                            f"({', '.join(scalar_params)}) modulo the "
                            "array dimension",
                        )
                    )
        return findings


class _LineAnchor:
    """Minimal stand-in for an AST node at a known line."""

    def __init__(self, lineno: int) -> None:
        self.lineno = lineno
