"""The ``reprolint`` runner: walk, parse, check, filter, report.

:func:`run_lint` is the single entry point used by the ``repro lint``
CLI subcommand, CI and the tests.  It walks a source tree, parses every
``.py`` file once, runs the selected checkers (module-level rules per
file, tree-level rules across all files), then filters findings
through per-line suppression comments and the committed baseline.

Wall-clock per stage is charged to a :class:`repro.perf.PerfTelemetry`
(``walk`` / ``parse`` / ``check:<rule>`` / ``filter``), surfaced in the
``--json`` report so lint runtime regressions show up next to the
engine benchmarks.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from ..perf import PerfTelemetry
from .base import (
    Finding,
    ModuleChecker,
    ModuleInfo,
    TreeChecker,
    all_rules,
    checkers_for,
)
from .baseline import Baseline
from .parity import BatchTwinParityChecker, ParityPair
from .suppress import split_suppressed, suppressions_for_source

__all__ = [
    "LintReport",
    "run_lint",
    "lint_sources",
    "default_root",
    "default_baseline_path",
    "BASELINE_FILENAME",
]

BASELINE_FILENAME = ".reprolint-baseline.json"


def default_root() -> Path:
    """The installed ``repro`` package — the tree the invariants govern."""
    return Path(__file__).resolve().parent.parent


def default_baseline_path(root: Path) -> Optional[Path]:
    """Locate a committed baseline near ``root`` or the working directory.

    Checks the working directory first (the checkout the developer is
    in), then walks up from the linted root (``src/repro`` →
    ``src`` → repo root), returning the first baseline file found.
    """
    candidates = [Path.cwd() / BASELINE_FILENAME]
    candidates += [
        parent / BASELINE_FILENAME for parent in Path(root).resolve().parents
    ]
    for candidate in candidates[:4]:
        if candidate.is_file():
            return candidate
    return None


@dataclass
class LintReport:
    """Outcome of one lint run."""

    root: str
    #: Rule IDs that ran.
    rules: List[str]
    #: All findings that survived inline suppression.
    findings: List[Finding]
    #: Findings not covered by the baseline — these fail the run.
    new_findings: List[Finding]
    #: Findings absorbed by the committed baseline.
    baselined: List[Finding]
    #: Findings silenced by ``# reprolint: disable=...`` comments.
    suppressed: List[Finding]
    #: Scalar↔batch pairings RL105 verified.
    parity_pairs: List[ParityPair]
    checked_files: int
    telemetry: PerfTelemetry = field(default_factory=PerfTelemetry)

    @property
    def ok(self) -> bool:
        """True when nothing new was found (the CI gate)."""
        return not self.new_findings

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable report (the ``repro lint --json`` payload)."""
        return {
            "root": self.root,
            "rules": list(self.rules),
            "ok": self.ok,
            "checked_files": self.checked_files,
            "counts": {
                "findings": len(self.findings),
                "new": len(self.new_findings),
                "baselined": len(self.baselined),
                "suppressed": len(self.suppressed),
                "parity_pairs": len(self.parity_pairs),
            },
            "new_findings": [f.to_dict() for f in self.new_findings],
            "baselined": [f.to_dict() for f in self.baselined],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "parity_pairs": [p.to_dict() for p in self.parity_pairs],
            "telemetry": self.telemetry.as_dict(),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    def summary_lines(self) -> List[str]:
        """Human-readable report: one line per new finding + a summary."""
        lines = [
            f"{f.path}:{f.line}: {f.rule} {f.message}"
            for f in self.new_findings
        ]
        lines.append(
            f"reprolint: {len(self.new_findings)} new finding(s), "
            f"{len(self.baselined)} baselined, "
            f"{len(self.suppressed)} suppressed, "
            f"{len(self.parity_pairs)} parity pair(s) verified "
            f"across {self.checked_files} file(s) "
            f"[rules: {', '.join(self.rules)}]"
        )
        return lines


# ----------------------------------------------------------------------

def _walk_tree(root: Path) -> List[Path]:
    return sorted(
        p for p in root.rglob("*.py") if "__pycache__" not in p.parts
    )


def _parse_modules(
    root: Path, files: List[Path], telemetry: PerfTelemetry
) -> Dict[str, ModuleInfo]:
    modules: Dict[str, ModuleInfo] = {}
    with telemetry.stage("parse"):
        for path in files:
            relative = path.relative_to(root).as_posix()
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
            modules[relative] = ModuleInfo(
                path=relative, source=source, tree=tree
            )
    return modules


def lint_sources(
    sources: Dict[str, str],
    rules: Optional[List[str]] = None,
    baseline: Optional[Baseline] = None,
) -> LintReport:
    """Lint in-memory ``{relative_path: source}`` (fixture-friendly)."""
    modules = {
        path: ModuleInfo(path=path, source=source, tree=ast.parse(source))
        for path, source in sources.items()
    }
    return _lint_modules(
        modules, root="<memory>", rules=rules, baseline=baseline
    )


def run_lint(
    root: Optional[Path] = None,
    rules: Optional[List[str]] = None,
    baseline_path: Optional[Path] = None,
    use_baseline: bool = True,
    telemetry: Optional[PerfTelemetry] = None,
) -> LintReport:
    """Lint a source tree on disk.

    ``baseline_path=None`` with ``use_baseline=True`` auto-discovers a
    committed ``.reprolint-baseline.json`` via
    :func:`default_baseline_path`.
    """
    telemetry = telemetry if telemetry is not None else PerfTelemetry()
    root = Path(root) if root is not None else default_root()
    if not root.is_dir():
        raise FileNotFoundError(f"lint root {root} is not a directory")
    with telemetry.stage("walk"):
        files = _walk_tree(root)
    modules = _parse_modules(root, files, telemetry)
    baseline = None
    if use_baseline:
        if baseline_path is None:
            baseline_path = default_baseline_path(root)
        if baseline_path is not None:
            baseline = Baseline.load(Path(baseline_path))
    return _lint_modules(
        modules,
        root=str(root),
        rules=rules,
        baseline=baseline,
        telemetry=telemetry,
    )


def _lint_modules(
    modules: Dict[str, ModuleInfo],
    root: str,
    rules: Optional[List[str]] = None,
    baseline: Optional[Baseline] = None,
    telemetry: Optional[PerfTelemetry] = None,
) -> LintReport:
    telemetry = telemetry if telemetry is not None else PerfTelemetry()
    checkers = checkers_for(rules)
    raw: List[Finding] = []
    parity_pairs: List[ParityPair] = []
    for checker in checkers:
        with telemetry.stage(f"check:{checker.rule.id}"):
            if isinstance(checker, ModuleChecker):
                for module in modules.values():
                    raw.extend(checker.check_module(module))
            elif isinstance(checker, TreeChecker):
                raw.extend(checker.check_tree(modules))
                if isinstance(checker, BatchTwinParityChecker):
                    parity_pairs = list(checker.pairs)
            else:  # pragma: no cover - registry enforces the two bases
                raise TypeError(f"unknown checker type {type(checker)!r}")
    with telemetry.stage("filter"):
        per_file = {
            path: suppressions_for_source(module.source)
            for path, module in modules.items()
        }
        raw.sort(key=lambda f: (f.path, f.line, f.rule))
        active, suppressed = split_suppressed(raw, per_file)
        if baseline is not None:
            new, baselined = baseline.split_new(active)
        else:
            new, baselined = list(active), []
    telemetry.count("files", len(modules))
    telemetry.count("findings", len(active))
    rule_ids = (
        sorted({c.rule.id for c in checkers})
        if rules is not None
        else [rule.id for rule in all_rules()]
    )
    return LintReport(
        root=root,
        rules=rule_ids,
        findings=active,
        new_findings=new,
        baselined=baselined,
        suppressed=suppressed,
        parity_pairs=parity_pairs,
        checked_files=len(modules),
        telemetry=telemetry,
    )
