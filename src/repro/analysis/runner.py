"""The ``reprolint`` runner: walk, check (incrementally), filter, report.

:func:`run_lint` is the single entry point used by the ``repro lint``
CLI subcommand, CI and the tests.  It walks a source tree and produces
one *record* per file — the module-rule findings, the inline
suppressions, and the :class:`~repro.analysis.graph.ModuleSummary`
that the whole-program rules consume.  Records are plain JSON, which
buys two things:

**Incremental runs.**  With a :class:`~repro.store.ResultStore`
enabled (``REPRO_CACHE_DIR``/``REPRO_CACHE=1``, or an explicit
``cache=``), each record is cached under a key derived from the file's
content hash, the module-rule set and the analysis package's own code
fingerprint (:data:`~repro.store.fingerprint.ANALYSIS_CODE_MODULES`) —
so a warm run re-parses only changed files and a lint-code change
invalidates everything.  Tree rules (RL105/RL108/RL109) always re-run,
but they read summaries, never source, so the warm path does zero
parsing for unchanged files and the report is byte-identical to a cold
run (telemetry aside).

**Parallel cold runs.**  Cache misses are parsed and checked on the
persistent :mod:`repro.exec` process pool (``jobs=`` controls the
width; ``jobs=1`` forces serial).  The backend's adaptive shard
planner groups files into dispatch chunks, replacing the old
``n_jobs * 4`` chunking heuristic.

Wall-clock per stage is charged to a :class:`repro.perf.PerfTelemetry`
(``walk`` / ``cache`` / ``parse`` / ``check:<tree-rule>`` /
``filter``), surfaced in the ``--json`` report so lint runtime
regressions show up next to the engine benchmarks.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..exec import backend_for
from ..perf import PerfTelemetry
from ..store.fingerprint import ANALYSIS_CODE_MODULES, config_key
from ..store.store import ResultStore, resolve_store
from .base import (
    Finding,
    ModuleChecker,
    ModuleInfo,
    TreeChecker,
    all_rules,
    checkers_for,
)
from .baseline import Baseline
from .graph import ModuleSummary, Program, summarize_module
from .parity import BatchTwinParityChecker, ParityPair
from .suppress import split_suppressed, suppressions_for_source

__all__ = [
    "LintReport",
    "run_lint",
    "lint_sources",
    "default_root",
    "default_baseline_path",
    "BASELINE_FILENAME",
]

BASELINE_FILENAME = ".reprolint-baseline.json"

#: Bumped whenever the per-file record layout changes, so stale cache
#: entries from an older reprolint simply miss.  2: ModuleSummary grew
#: the ``pool_calls`` field RL111 reads.
_RECORD_VERSION = 2

#: Below this many cache misses even a warm pool's dispatch overhead
#: outweighs the parallel parse; stay serial.
_PARALLEL_MIN_FILES = 16

#: Upper bound on auto-selected worker processes.
_MAX_JOBS = 8


def default_root() -> Path:
    """The installed ``repro`` package — the tree the invariants govern."""
    return Path(__file__).resolve().parent.parent


def default_baseline_path(root: Path) -> Optional[Path]:
    """Locate a committed baseline near ``root`` or the working directory.

    Checks the working directory first (the checkout the developer is
    in), then walks up from the linted root (``src/repro`` →
    ``src`` → repo root → ... → filesystem root), returning the first
    baseline file found.
    """
    candidates = [Path.cwd() / BASELINE_FILENAME]
    candidates += [
        parent / BASELINE_FILENAME for parent in Path(root).resolve().parents
    ]
    for candidate in candidates:
        if candidate.is_file():
            return candidate
    return None


@dataclass
class LintReport:
    """Outcome of one lint run."""

    root: str
    #: Rule IDs that ran.
    rules: List[str]
    #: All findings that survived inline suppression.
    findings: List[Finding]
    #: Findings not covered by the baseline — errors fail the run.
    new_findings: List[Finding]
    #: Findings absorbed by the committed baseline.
    baselined: List[Finding]
    #: Findings silenced by ``# reprolint: disable=...`` comments.
    suppressed: List[Finding]
    #: Scalar↔batch pairings RL105 verified.
    parity_pairs: List[ParityPair]
    checked_files: int
    telemetry: PerfTelemetry = field(default_factory=PerfTelemetry)
    #: True when findings were filtered to git-changed files only.
    changed_only: bool = False

    @property
    def errors(self) -> List[Finding]:
        """New findings at error severity (the ones that gate CI)."""
        return [f for f in self.new_findings if f.severity != "warning"]

    @property
    def warnings(self) -> List[Finding]:
        """New findings at warning severity (reported, non-fatal)."""
        return [f for f in self.new_findings if f.severity == "warning"]

    @property
    def ok(self) -> bool:
        """True when nothing new at error severity (the CI gate)."""
        return not self.errors

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable report (the ``repro lint --json`` payload)."""
        return {
            "root": self.root,
            "rules": list(self.rules),
            "ok": self.ok,
            "checked_files": self.checked_files,
            "changed_only": self.changed_only,
            "counts": {
                "findings": len(self.findings),
                "new": len(self.new_findings),
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "baselined": len(self.baselined),
                "suppressed": len(self.suppressed),
                "parity_pairs": len(self.parity_pairs),
            },
            "new_findings": [f.to_dict() for f in self.new_findings],
            "baselined": [f.to_dict() for f in self.baselined],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "parity_pairs": [p.to_dict() for p in self.parity_pairs],
            "telemetry": self.telemetry.as_dict(),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    def summary_lines(self) -> List[str]:
        """Human-readable report: one line per new finding + a summary."""
        lines = [
            f"{f.path}:{f.line}: {f.rule} "
            + ("[warning] " if f.severity == "warning" else "")
            + f.message
            for f in self.new_findings
        ]
        lines.append(
            f"reprolint: {len(self.errors)} new error(s), "
            f"{len(self.warnings)} warning(s), "
            f"{len(self.baselined)} baselined, "
            f"{len(self.suppressed)} suppressed, "
            f"{len(self.parity_pairs)} parity pair(s) verified "
            f"across {self.checked_files} file(s) "
            f"[rules: {', '.join(self.rules)}]"
        )
        return lines


# ----------------------------------------------------------------------
# Per-file records (the cacheable unit)
# ----------------------------------------------------------------------

def _check_file_record(
    path: str, source: str, module_rule_ids: Sequence[str]
) -> Dict[str, object]:
    """Parse one file and run the module-level rules over it.

    The result is plain JSON — findings, inline suppressions and the
    module summary — so it can live in the content-addressed store and
    feed the tree rules on warm runs without re-parsing.
    """
    tree = ast.parse(source, filename=path)
    module = ModuleInfo(path=path, source=source, tree=tree)
    findings: List[Finding] = []
    if module_rule_ids:
        for checker in checkers_for(list(module_rule_ids)):
            findings.extend(checker.check_module(module))
    suppressions = suppressions_for_source(source)
    return {
        "version": _RECORD_VERSION,
        "findings": [f.to_dict() for f in findings],
        "suppressions": {
            str(line): (sorted(rules) if rules is not None else None)
            for line, rules in suppressions.items()
        },
        "summary": summarize_module(module).to_dict(),
    }


def _check_file_worker(
    item: "Tuple[str, str, Tuple[str, ...]]"
) -> "Tuple[str, Dict[str, object]]":
    path, source, module_rule_ids = item
    return path, _check_file_record(path, source, module_rule_ids)


def _valid_record(body: object) -> bool:
    return (
        isinstance(body, dict)
        and body.get("version") == _RECORD_VERSION
        and isinstance(body.get("findings"), list)
        and isinstance(body.get("suppressions"), dict)
        and isinstance(body.get("summary"), dict)
    )


def _record_key(
    path: str, source: str, module_rule_ids: Sequence[str]
) -> str:
    """Store key for one file's record.

    Keyed on the file's content hash, the module-rule set and (via
    ``ANALYSIS_CODE_MODULES``) the fingerprint of the analysis package
    itself — editing any checker invalidates every cached record.
    """
    sha = hashlib.sha256(source.encode("utf-8")).hexdigest()
    return config_key(
        "lint-file",
        {
            "path": path,
            "sha256": sha,
            "rules": list(module_rule_ids),
            "record": _RECORD_VERSION,
        },
        ANALYSIS_CODE_MODULES,
    )


def _decode_suppressions(
    payload: Dict[str, object]
) -> Dict[int, Optional[Set[str]]]:
    out: Dict[int, Optional[Set[str]]] = {}
    for line, rules in payload.items():
        out[int(line)] = None if rules is None else {str(r) for r in rules}
    return out


# ----------------------------------------------------------------------
# Checking (serial or process pool)
# ----------------------------------------------------------------------

def _resolve_jobs(jobs: Optional[int]) -> int:
    if jobs is not None:
        return max(1, int(jobs))
    return max(1, min(_MAX_JOBS, os.cpu_count() or 1))


def _check_files(
    items: "List[Tuple[str, str]]",
    module_rule_ids: Sequence[str],
    jobs: Optional[int],
    telemetry: PerfTelemetry,
) -> Dict[str, Dict[str, object]]:
    if not items:
        return {}
    n_jobs = _resolve_jobs(jobs)
    if n_jobs > 1 and len(items) >= _PARALLEL_MIN_FILES:
        payload = [
            (path, source, tuple(module_rule_ids)) for path, source in items
        ]
        pairs, report = backend_for(n_jobs).map(
            _check_file_worker,
            payload,
            parallel=True,
            family="lint.file",
            with_report=True,
        )
        if report.pooled:
            telemetry.count("lint.parallel.files", len(items))
        return dict(pairs)
    return {
        path: _check_file_record(path, source, module_rule_ids)
        for path, source in items
    }


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------

def _walk_tree(root: Path) -> List[Path]:
    return sorted(
        p for p in root.rglob("*.py") if "__pycache__" not in p.parts
    )


def _split_rules(
    rules: Optional[List[str]],
) -> "Tuple[List[str], List[TreeChecker]]":
    """(module rule IDs, tree checker instances) for a rule selection."""
    selected = checkers_for(rules)
    module_ids = sorted(
        c.rule.id for c in selected if isinstance(c, ModuleChecker)
    )
    tree_checkers = [c for c in selected if isinstance(c, TreeChecker)]
    return module_ids, tree_checkers


def _changed_files(root: Path) -> Optional[Set[str]]:
    """Root-relative paths git considers modified, or ``None``.

    ``None`` means "could not tell" (no git, not a checkout, no HEAD
    yet) and callers fall back to a full run.  Changed = unstaged +
    staged edits vs HEAD plus untracked files.
    """
    resolved = root.resolve()

    def _git(*args: str) -> "subprocess.CompletedProcess[str]":
        return subprocess.run(
            ["git", "-C", str(resolved), *args],
            capture_output=True,
            text=True,
            timeout=30,
        )

    try:
        top = _git("rev-parse", "--show-toplevel")
    except (OSError, subprocess.SubprocessError):
        return None
    if top.returncode != 0 or not top.stdout.strip():
        return None
    top_path = Path(top.stdout.strip())
    changed: Set[str] = set()
    for args in (
        ("diff", "--name-only", "HEAD"),
        ("ls-files", "--others", "--exclude-standard"),
    ):
        try:
            proc = _git(*args)
        except (OSError, subprocess.SubprocessError):
            return None
        if proc.returncode != 0:
            return None
        for line in proc.stdout.splitlines():
            name = line.strip()
            if not name:
                continue
            try:
                rel = (top_path / name).resolve().relative_to(resolved)
            except (OSError, ValueError):
                continue
            changed.add(rel.as_posix())
    return changed


def lint_sources(
    sources: Dict[str, str],
    rules: Optional[List[str]] = None,
    baseline: Optional[Baseline] = None,
) -> LintReport:
    """Lint in-memory ``{relative_path: source}`` (fixture-friendly)."""
    module_ids, _tree = _split_rules(rules)
    records = {
        path: _check_file_record(path, sources[path], module_ids)
        for path in sorted(sources)
    }
    return _assemble(records, root="<memory>", rules=rules, baseline=baseline)


def run_lint(
    root: Optional[Path] = None,
    rules: Optional[List[str]] = None,
    baseline_path: Optional[Path] = None,
    use_baseline: bool = True,
    telemetry: Optional[PerfTelemetry] = None,
    cache: "Union[None, bool, ResultStore]" = None,
    refresh: bool = False,
    jobs: Optional[int] = None,
    changed_only: bool = False,
) -> LintReport:
    """Lint a source tree on disk.

    ``baseline_path=None`` with ``use_baseline=True`` auto-discovers a
    committed ``.reprolint-baseline.json`` via
    :func:`default_baseline_path`.

    ``cache`` follows :func:`repro.store.resolve_store` semantics:
    ``None`` honours the ``REPRO_CACHE*`` environment, ``True`` forces
    the default store, ``False`` disables caching, and a
    :class:`~repro.store.ResultStore` is used as-is.  ``refresh=True``
    ignores (and rewrites) existing records.  ``changed_only=True``
    restricts *reported* findings to files git considers modified —
    the analysis still sees the whole tree, so cross-file rules stay
    sound — and falls back to a full report outside a git checkout.
    """
    telemetry = telemetry if telemetry is not None else PerfTelemetry()
    root = Path(root) if root is not None else default_root()
    if not root.is_dir():
        raise FileNotFoundError(f"lint root {root} is not a directory")
    with telemetry.stage("walk"):
        files = _walk_tree(root)
        sources = {
            path.relative_to(root).as_posix(): path.read_text(
                encoding="utf-8"
            )
            for path in files
        }
    store = resolve_store(cache)
    module_ids, _tree = _split_rules(rules)

    records: Dict[str, Dict[str, object]] = {}
    stale: List[str] = []
    keys: Dict[str, str] = {}
    with telemetry.stage("cache"):
        if store is not None:
            keys = {
                rel: _record_key(rel, source, module_ids)
                for rel, source in sources.items()
            }
            if refresh:
                stale = list(sources)
            else:
                for rel in sources:
                    body = store.get(keys[rel], touch=False)
                    if _valid_record(body):
                        records[rel] = body  # type: ignore[assignment]
                    else:
                        stale.append(rel)
                store.touch_many([keys[rel] for rel in records])
        else:
            stale = list(sources)
    with telemetry.stage("parse"):
        fresh = _check_files(
            [(rel, sources[rel]) for rel in stale],
            module_ids,
            jobs,
            telemetry,
        )
    records.update(fresh)
    if store is not None and fresh:
        store.put_many({keys[rel]: fresh[rel] for rel in fresh})
    telemetry.count("lint.cache.hits", len(records) - len(fresh))
    telemetry.count("lint.cache.misses", len(fresh))

    baseline = None
    if use_baseline:
        if baseline_path is None:
            baseline_path = default_baseline_path(root)
        if baseline_path is not None:
            baseline = Baseline.load(Path(baseline_path))
    changed = _changed_files(root) if changed_only else None
    return _assemble(
        records,
        root=str(root),
        rules=rules,
        baseline=baseline,
        telemetry=telemetry,
        changed=changed,
    )


def _assemble(
    records: Dict[str, Dict[str, object]],
    root: str,
    rules: Optional[List[str]] = None,
    baseline: Optional[Baseline] = None,
    telemetry: Optional[PerfTelemetry] = None,
    changed: Optional[Set[str]] = None,
) -> LintReport:
    """Tree rules + suppression/baseline filtering over file records."""
    telemetry = telemetry if telemetry is not None else PerfTelemetry()
    _module_ids, tree_checkers = _split_rules(rules)
    findings: List[Finding] = []
    for rel in records:
        findings.extend(
            Finding.from_dict(payload)  # type: ignore[arg-type]
            for payload in records[rel]["findings"]  # type: ignore[union-attr]
        )
    summaries = {
        rel: ModuleSummary.from_dict(records[rel]["summary"])  # type: ignore[arg-type]
        for rel in records
    }
    program = Program(root=root, summaries=summaries)
    parity_pairs: List[ParityPair] = []
    for checker in tree_checkers:
        with telemetry.stage(f"check:{checker.rule.id}"):
            findings.extend(checker.check_program(program))
            if isinstance(checker, BatchTwinParityChecker):
                parity_pairs = list(checker.pairs)
    with telemetry.stage("filter"):
        per_file = {
            rel: _decode_suppressions(records[rel]["suppressions"])  # type: ignore[arg-type]
            for rel in records
        }
        if changed is not None:
            findings = [f for f in findings if f.path in changed]
        findings.sort(key=lambda f: (f.path, f.line, f.rule))
        active, suppressed = split_suppressed(findings, per_file)
        if baseline is not None:
            new, baselined = baseline.split_new(active)
        else:
            new, baselined = list(active), []
    telemetry.count("files", len(records))
    telemetry.count("findings", len(active))
    selected = checkers_for(rules)
    rule_ids = (
        sorted({c.rule.id for c in selected})
        if rules is not None
        else [rule.id for rule in all_rules()]
    )
    return LintReport(
        root=root,
        rules=rule_ids,
        findings=active,
        new_findings=new,
        baselined=baselined,
        suppressed=suppressed,
        parity_pairs=parity_pairs,
        checked_files=len(records),
        telemetry=telemetry,
        changed_only=changed is not None,
    )
