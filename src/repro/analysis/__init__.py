"""``reprolint`` — AST-based domain-invariant checkers for the repro tree.

The rules (see :mod:`repro.analysis.base` and docs/STATIC_ANALYSIS.md):

* **RL101 rng-discipline** — randomness only via the seeded stream
  registry (:mod:`repro.sim.random`).
* **RL102 sim-time-purity** — no wall-clock reads in simulation code.
* **RL103 unit-suffix-discipline** — no dB/linear mixing; config
  floats carry unit suffixes.
* **RL104 float-equality** — no exact ``==``/``!=`` on float literals.
* **RL105 batch-twin-parity** — ``Batch*`` classes mirror their scalar
  twins' public API modulo the array dimension.
* **RL106 wall-clock-discipline** — wall-clock reads outside
  :mod:`repro.perf` / :mod:`repro.obs` go through
  :data:`repro.perf.wall_clock`, never bare ``time.perf_counter``.
* **RL107 store-atomic-io** — file writes under :mod:`repro.store`
  flow through the tmp+rename helpers in ``store/atomic.py``, never
  direct ``open()``/``os.open``/``Path.write_*`` calls.
* **RL108 fingerprint-completeness** — each ``*_CODE_MODULES`` tuple
  in :mod:`repro.store.fingerprint` covers the static import closure
  of its entry module (a gap is a stale-cache bug).
* **RL109 determinism-taint** — wall-clock/entropy/env reads never
  flow into solver results, manifests or store keys except via the
  sanctioned :mod:`repro.perf` / seeded-stream APIs.
* **RL110 obs-guard-discipline** — hot-path ``obs.*`` call sites sit
  behind the ``obs is None`` zero-cost guard.
* **RL111 exec-backend-discipline** — ``ProcessPoolExecutor`` /
  ``multiprocessing.Pool`` are constructed only inside
  :mod:`repro.exec`; everything else goes through the shared
  execution backend.

RL105/RL108/RL109/RL111 are *whole-program* rules built on the import graph
and module summaries in :mod:`repro.analysis.graph`.  The runner is
incremental: with the result store enabled, per-file records are
cached by content hash and warm runs re-check only changed files.

Run it as ``repro lint [--json] [--sarif FILE] [--changed]
[--rule RL10x ...]``, or from code::

    from repro.analysis import run_lint
    report = run_lint()
    assert report.ok, report.summary_lines()
"""

from .base import Finding, Rule, all_rules  # noqa: F401
from .baseline import Baseline  # noqa: F401
from .checkers import (  # noqa: F401  (registers RL101-RL104, RL106-RL107)
    FloatEqualityChecker,
    RngDisciplineChecker,
    SimTimePurityChecker,
    StoreAtomicIoChecker,
    UnitSuffixChecker,
    WallClockDisciplineChecker,
)
from .graph import (  # noqa: F401
    ImportGraph,
    ModuleSummary,
    Program,
    module_name,
    summarize_module,
)
from .graphrules import (  # noqa: F401  (registers RL108-RL111)
    DeterminismTaintChecker,
    ExecBackendDisciplineChecker,
    FingerprintCompletenessChecker,
    ObsGuardChecker,
)
from .parity import BatchTwinParityChecker, ParityPair  # noqa: F401
from .suppress import split_suppressed, suppressions_for_source  # noqa: F401
from .runner import (  # noqa: F401
    BASELINE_FILENAME,
    LintReport,
    default_baseline_path,
    default_root,
    lint_sources,
    run_lint,
)
from .reporters import sarif_json, sarif_report, write_sarif  # noqa: F401

__all__ = [
    "Finding",
    "Rule",
    "all_rules",
    "Baseline",
    "RngDisciplineChecker",
    "SimTimePurityChecker",
    "UnitSuffixChecker",
    "FloatEqualityChecker",
    "WallClockDisciplineChecker",
    "StoreAtomicIoChecker",
    "BatchTwinParityChecker",
    "FingerprintCompletenessChecker",
    "DeterminismTaintChecker",
    "ObsGuardChecker",
    "ExecBackendDisciplineChecker",
    "ParityPair",
    "ImportGraph",
    "ModuleSummary",
    "Program",
    "module_name",
    "summarize_module",
    "split_suppressed",
    "suppressions_for_source",
    "LintReport",
    "run_lint",
    "lint_sources",
    "default_root",
    "default_baseline_path",
    "BASELINE_FILENAME",
    "sarif_report",
    "sarif_json",
    "write_sarif",
]
