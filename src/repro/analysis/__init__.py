"""``reprolint`` — AST-based domain-invariant checkers for the repro tree.

The rules (see :mod:`repro.analysis.base` and docs/STATIC_ANALYSIS.md):

* **RL101 rng-discipline** — randomness only via the seeded stream
  registry (:mod:`repro.sim.random`).
* **RL102 sim-time-purity** — no wall-clock reads in simulation code.
* **RL103 unit-suffix-discipline** — no dB/linear mixing; config
  floats carry unit suffixes.
* **RL104 float-equality** — no exact ``==``/``!=`` on float literals.
* **RL105 batch-twin-parity** — ``Batch*`` classes mirror their scalar
  twins' public API modulo the array dimension.
* **RL106 wall-clock-discipline** — wall-clock reads outside
  :mod:`repro.perf` / :mod:`repro.obs` go through
  :data:`repro.perf.wall_clock`, never bare ``time.perf_counter``.
* **RL107 store-atomic-io** — file writes under :mod:`repro.store`
  flow through the tmp+rename helpers in ``store/atomic.py``, never
  direct ``open()``/``os.open``/``Path.write_*`` calls.

Run it as ``repro lint [--json] [--rule RL10x ...]``, or from code::

    from repro.analysis import run_lint
    report = run_lint()
    assert report.ok, report.summary_lines()
"""

from .base import Finding, Rule, all_rules  # noqa: F401
from .baseline import Baseline  # noqa: F401
from .checkers import (  # noqa: F401  (registers RL101-RL104, RL106-RL107)
    FloatEqualityChecker,
    RngDisciplineChecker,
    SimTimePurityChecker,
    StoreAtomicIoChecker,
    UnitSuffixChecker,
    WallClockDisciplineChecker,
)
from .parity import BatchTwinParityChecker, ParityPair  # noqa: F401
from .suppress import split_suppressed, suppressions_for_source  # noqa: F401
from .runner import (  # noqa: F401
    BASELINE_FILENAME,
    LintReport,
    default_baseline_path,
    default_root,
    lint_sources,
    run_lint,
)

__all__ = [
    "Finding",
    "Rule",
    "all_rules",
    "Baseline",
    "RngDisciplineChecker",
    "SimTimePurityChecker",
    "UnitSuffixChecker",
    "FloatEqualityChecker",
    "WallClockDisciplineChecker",
    "BatchTwinParityChecker",
    "ParityPair",
    "split_suppressed",
    "suppressions_for_source",
    "LintReport",
    "run_lint",
    "lint_sources",
    "default_root",
    "default_baseline_path",
    "BASELINE_FILENAME",
]
