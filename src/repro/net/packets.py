"""Packet and batch abstractions.

The sensing task produces *image batches* (``Mdata`` in the paper); the
transport slices them into UDP datagrams.  These classes keep the byte
accounting honest end to end.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List

__all__ = ["Datagram", "ImageBatch"]


@dataclass(frozen=True)
class Datagram:
    """One UDP datagram belonging to a batch."""

    batch_id: int
    sequence: int
    payload_bytes: int

    def __post_init__(self) -> None:
        if self.payload_bytes <= 0:
            raise ValueError("payload_bytes must be positive")
        if self.sequence < 0:
            raise ValueError("sequence must be non-negative")


@dataclass
class ImageBatch:
    """A batch of collected imagery awaiting delivery."""

    batch_id: int
    total_bytes: int
    created_at_s: float = 0.0
    delivered_bytes: int = 0

    def __post_init__(self) -> None:
        if self.total_bytes <= 0:
            raise ValueError("total_bytes must be positive")

    @property
    def remaining_bytes(self) -> int:
        """Bytes still to deliver."""
        return self.total_bytes - self.delivered_bytes

    @property
    def complete(self) -> bool:
        """Whether everything has been delivered."""
        return self.delivered_bytes >= self.total_bytes

    @property
    def delivered_fraction(self) -> float:
        """Fraction of the batch delivered, in [0, 1]."""
        return min(1.0, self.delivered_bytes / self.total_bytes)

    def deliver(self, nbytes: int) -> int:
        """Record delivery of up to ``nbytes``; returns bytes accepted."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        accepted = min(nbytes, self.remaining_bytes)
        self.delivered_bytes += accepted
        return accepted

    def datagrams(self, payload_bytes: int = 1472) -> List[Datagram]:
        """Slice the batch into datagrams of ``payload_bytes`` each."""
        if payload_bytes <= 0:
            raise ValueError("payload_bytes must be positive")
        count = math.ceil(self.total_bytes / payload_bytes)
        out: List[Datagram] = []
        remaining = self.total_bytes
        for seq in range(count):
            size = min(payload_bytes, remaining)
            out.append(Datagram(self.batch_id, seq, size))
            remaining -= size
        return out
