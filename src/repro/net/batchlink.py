"""Replica-batched wireless link engine.

:class:`BatchWirelessLink` steps R independent replicas of the
epoch-based :class:`~repro.net.link.WirelessLink` pipeline in lockstep
NumPy: one batched channel draw, one vectorised rate-control decision,
one vectorised subframe-PER evaluation and one binomial draw per epoch
deliver the outcome of R links at once.  Measurement campaigns are
embarrassingly parallel across (seed, distance, speed) combinations,
so this is where their wall-clock goes from minutes to seconds.

Equivalence contract: with ``n_replicas == 1`` and the same
:class:`~repro.sim.random.RandomStreams` seed and stream names, the
batched engine consumes the random streams exactly as the scalar
engine does and reproduces its :class:`LinkStepResult` series bit for
bit (see ``tests/net/test_batchlink.py``).  With R > 1 the replicas
share one stream per subsystem, drawing ``(R,)`` blocks per epoch —
statistically equivalent to R independently seeded scalar runs.

Per-MCS quantities that the scalar engine recomputes per epoch (PHY
rate, aggregate size after host starvation, burst airtime) are pure
functions of the MCS index and the subframe count, so they are
precomputed once into lookup tables with the *scalar* code — keeping
the batch bit-identical while making the per-epoch cost one fancy
index instead of a Python call chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..channel.channel import BatchAerialChannel
from ..faults.outage import BatchOutageSchedule
from ..mac.aggregation import AmpduConfig, AmpduLink
from ..perf import PerfTelemetry, wall_clock
from ..phy.error import ErrorModel
from ..phy.mcs import MCS_TABLE
from ..phy.phy80211n import PhyConfig
from ..phy.rate_control import BatchRateController
from ..sim.random import RandomStreams
from .link import LinkStepResult

__all__ = ["BatchLinkStepResult", "BatchWirelessLink"]


@dataclass(frozen=True)
class BatchLinkStepResult:
    """Outcome of one epoch across all replicas (parallel arrays)."""

    bytes_delivered: np.ndarray
    subframes_sent: np.ndarray
    subframes_delivered: np.ndarray
    mcs_index: np.ndarray
    snr_db: np.ndarray
    airtime_s: np.ndarray

    @property
    def n_replicas(self) -> int:
        """Number of replicas in this batch."""
        return int(self.bytes_delivered.shape[0])

    @property
    def delivery_ratio(self) -> np.ndarray:
        """Per-replica fraction of sent subframes acknowledged."""
        sent = np.maximum(self.subframes_sent, 1)
        return np.where(
            self.subframes_sent == 0, 0.0, self.subframes_delivered / sent
        )

    def result(self, replica: int) -> LinkStepResult:
        """Materialise one replica's outcome as a scalar result."""
        return LinkStepResult(
            bytes_delivered=int(self.bytes_delivered[replica]),
            subframes_sent=int(self.subframes_sent[replica]),
            subframes_delivered=int(self.subframes_delivered[replica]),
            mcs_index=int(self.mcs_index[replica]),
            snr_db=float(self.snr_db[replica]),
            airtime_s=float(self.airtime_s[replica]),
        )


class BatchWirelessLink:
    """R directed 802.11n links stepped in lockstep (one per replica)."""

    def __init__(
        self,
        channel: BatchAerialChannel,
        controller: BatchRateController,
        error_model: Optional[ErrorModel] = None,
        phy: PhyConfig = PhyConfig(),
        ampdu: Optional[AmpduConfig] = None,
        streams: Optional[RandomStreams] = None,
        epoch_s: float = 0.02,
        stream_name: str = "link",
        outage: Optional[BatchOutageSchedule] = None,
        telemetry: Optional[PerfTelemetry] = None,
    ) -> None:
        if epoch_s <= 0:
            raise ValueError("epoch_s must be positive")
        if controller.n_replicas != channel.n_replicas:
            raise ValueError(
                f"controller has {controller.n_replicas} replicas, "
                f"channel has {channel.n_replicas}"
            )
        self.channel = channel
        self.controller = controller
        self.n_replicas = channel.n_replicas
        self.error_model = error_model if error_model is not None else ErrorModel()
        self.phy = phy
        self.mac = AmpduLink(ampdu if ampdu is not None else AmpduConfig(), phy)
        streams = streams if streams is not None else RandomStreams(seed=0)
        self._rng = streams.get(f"{stream_name}.delivery")
        self.epoch_s = epoch_s
        if outage is not None:
            if outage.n_replicas != self.n_replicas:
                raise ValueError(
                    f"outage schedule has {outage.n_replicas} replicas, "
                    f"link has {self.n_replicas}"
                )
            # An empty schedule is normalised away so the fault-free
            # code path is byte-for-byte the pre-fault one.
            if outage.is_empty:
                outage = None
        self.outage = outage
        self.telemetry = telemetry
        self._oracle_hints = hasattr(controller, "expected_goodput_bps")
        # Per-MCS lookup tables built with the scalar MAC/PHY code, so
        # batched epochs charge exactly the scalar airtimes.
        indices = sorted(MCS_TABLE)
        if indices != list(range(len(indices))):
            raise ValueError("MCS table must be contiguous from 0")
        layout = self.mac.config.layout
        self._rate_table = np.array(
            [phy.data_rate_bps(i) for i in indices]
        )
        self._nsub_table = np.array(
            [self.mac.config.subframes_for_rate(r) for r in self._rate_table],
            dtype=np.int64,
        )
        max_sub = self.mac.config.max_subframes
        self._airtime_table = np.array(
            [
                [self.mac.burst_airtime_s(i, n) for n in range(1, max_sub + 1)]
                for i in indices
            ]
        )
        self._app_payload_bytes = layout.app_payload_bytes
        self._subframe_bytes = layout.subframe_bytes

    def is_blacked_out(self, now_s: float) -> np.ndarray:
        """Per-replica injected-outage mask at ``now_s``."""
        if self.outage is None:
            return np.zeros(self.n_replicas, dtype=bool)
        return self.outage.is_out(now_s)

    # ------------------------------------------------------------------
    def step(
        self,
        now_s: float,
        distance_m,
        relative_speed_mps=0.0,
        duration_s: Optional[float] = None,
        backlog_bytes=None,
    ) -> BatchLinkStepResult:
        """Run one epoch (or ``duration_s``) across all replicas.

        Mirrors :meth:`WirelessLink.step`: longer durations are
        subdivided into epoch-sized sub-steps, ``backlog_bytes`` (a
        scalar or per-replica array) bounds delivery for finite
        transfers, ``None`` means saturated traffic.
        """
        dt = self.epoch_s if duration_s is None else duration_s
        if dt <= 0:
            raise ValueError("duration must be positive")
        if dt > self.epoch_s * 1.5:
            return self._step_subdivided(
                now_s, distance_m, relative_speed_mps, dt, backlog_bytes
            )
        tel = self.telemetry
        # Wall-clock reads are perf instrumentation only (charged to
        # PerfTelemetry stages); simulation behaviour never depends on
        # them, hence the sanctioned repro.perf.wall_clock.
        clock = wall_clock
        backlog = self._as_backlog(backlog_bytes)

        t0 = clock() if tel is not None else 0.0
        snr = self.channel.sample_snr_db_batch(
            now_s, distance_m, relative_speed_mps
        )
        hint = (
            self.channel.mean_snr_db_batch(distance_m, relative_speed_mps)
            if self._oracle_hints
            else None
        )
        if tel is not None:
            t1 = clock()
            tel.add_time("channel", t1 - t0)
            t0 = t1
        mcs = self.controller.select(now_s, snr_hint_db=hint)
        if tel is not None:
            t1 = clock()
            tel.add_time("control", t1 - t0)
            t0 = t1
        per = self.error_model.per_array(snr, mcs, self._subframe_bytes)
        if tel is not None:
            t1 = clock()
            tel.add_time("error", t1 - t0)
            t0 = t1

        n_sub = self._nsub_table[mcs]
        active = None
        if backlog is not None:
            active = backlog > 0
            needed = np.maximum(-(-backlog // self._app_payload_bytes), 1)
            n_sub = np.maximum(1, np.minimum(n_sub, needed))
        # Injected-outage replicas are excluded from the sending mask the
        # same way drained ones are, so — like the scalar twin — they
        # attempt no subframes and consume no delivery randomness while
        # the channel and controller state keep evolving.
        out = None
        if self.outage is not None:
            out = self.outage.is_out(now_s)
            if not out.any():
                out = None
        sending = active
        if out is not None:
            sending = ~out if sending is None else (sending & ~out)
        airtime = self._airtime_table[mcs, n_sub - 1]
        n_bursts = np.maximum(1, (dt / airtime).astype(np.int64))
        total_sub = n_bursts * n_sub
        if backlog is not None:
            max_needed = -(-np.maximum(backlog, 0) // self._app_payload_bytes)
            # Retransmission headroom, as in the scalar engine: cap
            # attempts at twice the backlog plus slack.
            total_sub = np.minimum(
                total_sub, np.maximum(2 * max_needed, n_sub)
            )
        if sending is not None:
            total_sub = np.where(sending, total_sub, 0)
        if tel is not None:
            t1 = clock()
            tel.add_time("mac", t1 - t0)
            t0 = t1

        p = np.maximum(0.0, 1.0 - per)
        if sending is None:
            delivered = self._rng.binomial(total_sub, p)
        else:
            delivered = np.zeros(self.n_replicas, dtype=np.int64)
            if sending.any():
                delivered[sending] = self._rng.binomial(
                    total_sub[sending], p[sending]
                )
        payload = delivered * self._app_payload_bytes
        if backlog is not None:
            payload = np.minimum(payload, np.maximum(backlog, 0))
        if tel is not None:
            t1 = clock()
            tel.add_time("delivery", t1 - t0)
            t0 = t1

        self.controller.feedback(now_s, mcs, total_sub, delivered)
        if tel is not None:
            tel.add_time("feedback", clock() - t0)
            tel.count("epochs")
            tel.count("replica_epochs", self.n_replicas)
            if out is not None:
                tel.count("faults.outage_replica_epochs", int(out.sum()))

        result_air = np.minimum(dt, n_bursts * airtime)
        if sending is not None:
            result_air = np.where(sending, result_air, 0.0)
        return BatchLinkStepResult(
            bytes_delivered=payload.astype(np.int64),
            subframes_sent=total_sub.astype(np.int64),
            subframes_delivered=delivered.astype(np.int64),
            mcs_index=np.asarray(mcs, dtype=np.int64),
            snr_db=snr,
            airtime_s=result_air,
        )

    def _as_backlog(self, backlog_bytes) -> Optional[np.ndarray]:
        if backlog_bytes is None:
            return None
        arr = np.asarray(backlog_bytes, dtype=np.int64)
        if arr.ndim == 0:
            arr = np.full(self.n_replicas, int(arr), dtype=np.int64)
        if arr.shape != (self.n_replicas,):
            raise ValueError(
                f"backlog_bytes must be scalar or shape ({self.n_replicas},)"
            )
        return arr

    def _step_subdivided(
        self,
        now_s: float,
        distance_m,
        relative_speed_mps,
        duration_s: float,
        backlog_bytes,
    ) -> BatchLinkStepResult:
        """Aggregate several epoch-sized steps into one result."""
        n = max(1, int(round(duration_s / self.epoch_s)))
        sub_dt = duration_s / n
        total_bytes = np.zeros(self.n_replicas, dtype=np.int64)
        total_sent = np.zeros(self.n_replicas, dtype=np.int64)
        total_delivered = np.zeros(self.n_replicas, dtype=np.int64)
        total_air = np.zeros(self.n_replicas)
        last_mcs = np.zeros(self.n_replicas, dtype=np.int64)
        snr_sum = np.zeros(self.n_replicas)
        remaining = self._as_backlog(backlog_bytes)
        executed = 0
        for i in range(n):
            step = self.step(
                now_s + i * sub_dt,
                distance_m=distance_m,
                relative_speed_mps=relative_speed_mps,
                duration_s=sub_dt,
                backlog_bytes=remaining,
            )
            total_bytes += step.bytes_delivered
            total_sent += step.subframes_sent
            total_delivered += step.subframes_delivered
            total_air += step.airtime_s
            last_mcs = step.mcs_index
            snr_sum += step.snr_db
            executed = i + 1
            if remaining is not None:
                remaining = remaining - step.bytes_delivered
                if np.all(remaining <= 0):
                    break
        return BatchLinkStepResult(
            bytes_delivered=total_bytes,
            subframes_sent=total_sent,
            subframes_delivered=total_delivered,
            mcs_index=last_mcs,
            snr_db=snr_sum / max(1, executed),
            airtime_s=total_air,
        )

    # ------------------------------------------------------------------
    def expected_goodput_bps(
        self, distance_m, relative_speed_mps=0.0, mcs_index=None
    ) -> np.ndarray:
        """Per-replica analytic mean goodput at the mean SNR (no fading)."""
        snr = self.channel.mean_snr_db_batch(distance_m, relative_speed_mps)
        if mcs_index is None:
            mcs = self.controller.select(0.0, snr_hint_db=snr)
        else:
            mcs = np.broadcast_to(
                np.asarray(mcs_index, dtype=np.int64), (self.n_replicas,)
            )
        per = self.error_model.per_array(snr, mcs, self._subframe_bytes)
        n = self._nsub_table[mcs]
        airtime = self._airtime_table[mcs, n - 1]
        payload_bits = n * self._app_payload_bytes * 8
        return payload_bits * (1.0 - per) / airtime
