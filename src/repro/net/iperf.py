"""An iperf-like saturated-UDP throughput meter.

The paper measured link quality with iperf over UDP, reporting
per-interval throughput readings.  :class:`IperfSession` reproduces the
estimator: saturated offered load, throughput = delivered bytes per
reporting interval.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..sim.monitor import SummaryStats, TimeSeries
from .link import WirelessLink

__all__ = ["IperfSession"]


class IperfSession:
    """Runs a saturated UDP flow and records per-interval throughput."""

    def __init__(self, link: WirelessLink, report_interval_s: float = 1.0) -> None:
        if report_interval_s <= 0:
            raise ValueError("report_interval_s must be positive")
        self.link = link
        self.report_interval_s = report_interval_s
        self.readings = TimeSeries("iperf.throughput_bps")

    def run(
        self,
        start_s: float,
        duration_s: float,
        distance_fn: Callable[[float], float],
        speed_fn: Optional[Callable[[float], float]] = None,
        idle_timeout_s: Optional[float] = None,
    ) -> TimeSeries:
        """Measure for ``duration_s`` seconds; returns the readings series.

        One reading per report interval: bits delivered in the interval
        divided by its length, the iperf UDP server-side estimator.
        ``idle_timeout_s`` ends the session early once no byte has been
        delivered for that long (an iperf client giving up on a dead
        link during an injected blackout).
        """
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if idle_timeout_s is not None and idle_timeout_s <= 0:
            raise ValueError("idle_timeout_s must be positive")
        now = start_s
        end = start_s + duration_s
        interval_bytes = 0
        next_report = start_s + self.report_interval_s
        last_progress = now
        while now < end:
            if (
                idle_timeout_s is not None
                and now - last_progress >= idle_timeout_s
            ):
                break
            distance = distance_fn(now)
            speed = speed_fn(now) if speed_fn is not None else 0.0
            step = self.link.step(now, distance_m=distance, relative_speed_mps=speed)
            interval_bytes += step.bytes_delivered
            now += self.link.epoch_s
            if step.bytes_delivered > 0:
                last_progress = now
            if now >= next_report - 1e-12:
                bps = interval_bytes * 8.0 / self.report_interval_s
                self.readings.record(now, bps)
                interval_bytes = 0
                next_report += self.report_interval_s
        return self.readings

    def summary(self) -> SummaryStats:
        """Boxplot summary of all recorded readings."""
        return self.readings.summary()
