"""The wireless link engine: channel x rate control x MAC.

:class:`WirelessLink` is the hybrid (epoch-based) simulation engine the
measurement campaigns and strategy replays run on.  Time advances in
short *epochs* (default 20 ms).  Per epoch the engine:

1. samples the channel SNR (correlated shadowing + fast fading),
2. asks the rate controller for an MCS (auto-rate sees no SNR; the
   oracle receives the mean-SNR hint),
3. computes the subframe PER from the error model,
4. packs as many A-MPDU exchanges as fit in the epoch and draws the
   delivered subframe count binomially,
5. feeds the outcome back to the controller.

This reproduces per-second iperf readings faithfully while staying
orders of magnitude faster than per-MPDU simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..channel.channel import AerialChannel
from ..faults.outage import OutageSchedule
from ..mac.aggregation import AmpduConfig, AmpduLink
from ..phy.error import ErrorModel
from ..phy.phy80211n import PhyConfig
from ..phy.rate_control import RateController
from ..sim.random import RandomStreams

__all__ = ["LinkStepResult", "WirelessLink"]


@dataclass(frozen=True)
class LinkStepResult:
    """Outcome of one epoch of link activity."""

    bytes_delivered: int
    subframes_sent: int
    subframes_delivered: int
    mcs_index: int
    snr_db: float
    airtime_s: float

    @property
    def delivery_ratio(self) -> float:
        """Fraction of sent subframes that were acknowledged."""
        if self.subframes_sent == 0:
            return 0.0
        return self.subframes_delivered / self.subframes_sent


class WirelessLink:
    """One directed 802.11n link between two UAVs (or UAV and ground)."""

    def __init__(
        self,
        channel: AerialChannel,
        controller: RateController,
        error_model: Optional[ErrorModel] = None,
        phy: PhyConfig = PhyConfig(),
        ampdu: Optional[AmpduConfig] = None,
        streams: Optional[RandomStreams] = None,
        epoch_s: float = 0.02,
        stream_name: str = "link",
        outage: Optional[OutageSchedule] = None,
    ) -> None:
        if epoch_s <= 0:
            raise ValueError("epoch_s must be positive")
        self.channel = channel
        self.controller = controller
        self.error_model = error_model if error_model is not None else ErrorModel()
        self.phy = phy
        self.mac = AmpduLink(ampdu if ampdu is not None else AmpduConfig(), phy)
        streams = streams if streams is not None else RandomStreams(seed=0)
        self._rng = streams.get(f"{stream_name}.delivery")
        self.epoch_s = epoch_s
        # An empty schedule is normalised away so the fault-free code
        # path is byte-for-byte the pre-fault one.
        if outage is not None and outage.is_empty:
            outage = None
        self.outage = outage
        self._oracle_hints = hasattr(controller, "expected_goodput_bps")

    def is_blacked_out(self, now_s: float) -> bool:
        """Whether an injected outage silences the link at ``now_s``."""
        return self.outage is not None and self.outage.is_out(now_s)

    # ------------------------------------------------------------------
    def step(
        self,
        now_s: float,
        distance_m: float,
        relative_speed_mps: float = 0.0,
        duration_s: Optional[float] = None,
        backlog_bytes: Optional[int] = None,
    ) -> LinkStepResult:
        """Run one epoch (or ``duration_s``) of transmissions.

        Durations longer than one epoch are subdivided so fading and
        rate-control dynamics stay at the epoch granularity regardless
        of the caller's tick.  ``backlog_bytes`` bounds delivery for
        finite transfers; ``None`` means saturated (iperf-style)
        traffic.
        """
        dt = self.epoch_s if duration_s is None else duration_s
        if dt <= 0:
            raise ValueError("duration must be positive")
        if dt > self.epoch_s * 1.5:
            return self._step_subdivided(
                now_s, distance_m, relative_speed_mps, dt, backlog_bytes
            )
        snr = self.channel.sample_snr_db(now_s, distance_m, relative_speed_mps)
        hint = (
            self.channel.mean_snr_db(distance_m, relative_speed_mps)
            if self._oracle_hints
            else None
        )
        mcs = self.controller.select(now_s, snr_hint_db=hint)
        if self.outage is not None and self.outage.is_out(now_s):
            # Blacked out: the channel and controller state evolved as
            # usual, but no subframes are attempted, no delivery
            # randomness is consumed and no feedback is given —
            # mirroring the backlog-drained early return below.
            return LinkStepResult(0, 0, 0, mcs, snr, 0.0)
        layout = self.mac.config.layout
        per = self.error_model.per(snr, mcs, layout.subframe_bytes)

        rate = self.phy.data_rate_bps(mcs)
        n_sub = self.mac.config.subframes_for_rate(rate)
        if backlog_bytes is not None:
            if backlog_bytes <= 0:
                return LinkStepResult(0, 0, 0, mcs, snr, 0.0)
            needed = -(-backlog_bytes // layout.app_payload_bytes)
            n_sub = max(1, min(n_sub, needed))
        burst_airtime = self.mac.burst_airtime_s(mcs, n_sub)
        n_bursts = max(1, int(dt / burst_airtime))
        total_sub = n_bursts * n_sub
        if backlog_bytes is not None:
            max_needed = -(-backlog_bytes // layout.app_payload_bytes)
            # Allow retransmission headroom: cap attempts at twice the
            # backlog plus slack, so a draining queue does not inflate
            # the subframe count artificially.
            total_sub = min(total_sub, max(2 * max_needed, n_sub))
        delivered_sub = int(self._rng.binomial(total_sub, max(0.0, 1.0 - per)))
        payload = delivered_sub * layout.app_payload_bytes
        if backlog_bytes is not None:
            payload = min(payload, backlog_bytes)
        self.controller.feedback(now_s, mcs, total_sub, delivered_sub)
        return LinkStepResult(
            bytes_delivered=payload,
            subframes_sent=total_sub,
            subframes_delivered=delivered_sub,
            mcs_index=mcs,
            snr_db=snr,
            airtime_s=min(dt, n_bursts * burst_airtime),
        )

    def _step_subdivided(
        self,
        now_s: float,
        distance_m: float,
        relative_speed_mps: float,
        duration_s: float,
        backlog_bytes: Optional[int],
    ) -> LinkStepResult:
        """Aggregate several epoch-sized steps into one result."""
        n = max(1, int(round(duration_s / self.epoch_s)))
        sub_dt = duration_s / n
        total_bytes = 0
        total_sent = 0
        total_delivered = 0
        total_air = 0.0
        last_mcs = 0
        snr_sum = 0.0
        remaining = backlog_bytes
        for i in range(n):
            step = self.step(
                now_s + i * sub_dt,
                distance_m=distance_m,
                relative_speed_mps=relative_speed_mps,
                duration_s=sub_dt,
                backlog_bytes=remaining,
            )
            total_bytes += step.bytes_delivered
            total_sent += step.subframes_sent
            total_delivered += step.subframes_delivered
            total_air += step.airtime_s
            last_mcs = step.mcs_index
            snr_sum += step.snr_db
            if remaining is not None:
                remaining -= step.bytes_delivered
                if remaining <= 0:
                    break
        return LinkStepResult(
            bytes_delivered=total_bytes,
            subframes_sent=total_sent,
            subframes_delivered=total_delivered,
            mcs_index=last_mcs,
            snr_db=snr_sum / max(1, min(n, i + 1)),
            airtime_s=total_air,
        )

    # ------------------------------------------------------------------
    def expected_goodput_bps(
        self, distance_m: float, relative_speed_mps: float = 0.0, mcs_index: Optional[int] = None
    ) -> float:
        """Analytic mean goodput at the mean SNR (no fading), for planners."""
        snr = self.channel.mean_snr_db(distance_m, relative_speed_mps)
        if mcs_index is None:
            mcs_index = self.controller.select(0.0, snr_hint_db=snr)
        per = self.error_model.per(
            snr, mcs_index, self.mac.config.layout.subframe_bytes
        )
        return self.mac.expected_goodput_bps(mcs_index, per)
