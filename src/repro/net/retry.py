"""Retry policies for transfers that must survive link blackouts.

:class:`ExponentialBackoff` is a deliberately deterministic backoff —
no jitter — because the repository's reproducibility contract demands
that the same ``(seed, FaultPlan)`` pair replays the same trace.  The
sequence is ``base, 2*base, 4*base, ...`` capped at ``max_delay_s``, so
delays are monotone non-decreasing and bounded (pinned by the property
tests in ``tests/properties/test_fault_properties.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ExponentialBackoff", "RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Shape of a transfer's blackout-retry behaviour."""

    #: First retry delay once the link is found blacked out.
    base_delay_s: float = 0.1
    #: Ceiling on any single retry delay.
    max_delay_s: float = 5.0
    #: Delay multiplier between consecutive failed probes.
    growth_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.base_delay_s <= 0:
            raise ValueError("base_delay_s must be positive")
        if self.max_delay_s < self.base_delay_s:
            raise ValueError("max_delay_s must be >= base_delay_s")
        if self.growth_factor < 1.0:
            raise ValueError("growth_factor must be >= 1")


class ExponentialBackoff:
    """Stateful deterministic exponential backoff."""

    def __init__(self, policy: RetryPolicy = RetryPolicy()) -> None:
        self.policy = policy
        self._next_delay_s = policy.base_delay_s
        self.retries = 0

    def next_delay_s(self) -> float:
        """The delay to wait now; advances the schedule."""
        delay = self._next_delay_s
        self.retries += 1
        self._next_delay_s = min(
            self.policy.max_delay_s,
            self._next_delay_s * self.policy.growth_factor,
        )
        return delay

    def reset(self) -> None:
        """Forget past failures (call on any forward progress)."""
        self._next_delay_s = self.policy.base_delay_s
        self.retries = 0
