"""Transport layer: packets, queues, the link engine, UDP and iperf."""

from .batchlink import BatchLinkStepResult, BatchWirelessLink
from .detailed import DetailedLink, DetailedTransferResult
from .iperf import IperfSession
from .link import LinkStepResult, WirelessLink
from .packets import Datagram, ImageBatch
from .queue import BatchQueue
from .retry import ExponentialBackoff, RetryPolicy
from .udp import TransferStalled, UdpTransfer

__all__ = [
    "BatchLinkStepResult",
    "BatchWirelessLink",
    "DetailedLink",
    "DetailedTransferResult",
    "IperfSession",
    "LinkStepResult",
    "WirelessLink",
    "Datagram",
    "ImageBatch",
    "BatchQueue",
    "ExponentialBackoff",
    "RetryPolicy",
    "TransferStalled",
    "UdpTransfer",
]
