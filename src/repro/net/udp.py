"""Finite UDP transfers over a wireless link.

:class:`UdpTransfer` delivers one :class:`~repro.net.packets.ImageBatch`
over a :class:`~repro.net.link.WirelessLink` while the geometry (distance,
relative speed) evolves under the caller's control.  It records the
cumulative delivered-bytes curve — exactly what Figure 1 of the paper
plots.

With a :class:`~repro.net.retry.RetryPolicy` the transfer also survives
injected link blackouts (see :mod:`repro.faults`): while the link
reports :meth:`~repro.net.link.WirelessLink.is_blacked_out`, the sender
backs off exponentially instead of burning epochs, and an optional idle
timeout turns a hopeless stall into a :class:`TransferStalled` exception
the mission layer can checkpoint on.  Both knobs default to off, leaving
fault-free behaviour untouched.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..sim.monitor import TimeSeries
from .link import WirelessLink
from .packets import ImageBatch
from .retry import ExponentialBackoff, RetryPolicy

__all__ = ["TransferStalled", "UdpTransfer"]


class TransferStalled(Exception):
    """A transfer made no progress for longer than its idle timeout."""

    def __init__(
        self, at_s: float, delivered_bytes: int, remaining_bytes: int
    ) -> None:
        self.at_s = at_s
        self.delivered_bytes = delivered_bytes
        self.remaining_bytes = remaining_bytes
        super().__init__(
            f"transfer stalled at t={at_s:.3f}s with "
            f"{remaining_bytes} bytes remaining"
        )


class UdpTransfer:
    """Pushes a batch through a link, tracking progress over time."""

    def __init__(
        self,
        link: WirelessLink,
        batch: ImageBatch,
        record_interval_s: float = 0.1,
        retry: Optional[RetryPolicy] = None,
        idle_timeout_s: Optional[float] = None,
    ) -> None:
        if record_interval_s <= 0:
            raise ValueError("record_interval_s must be positive")
        if idle_timeout_s is not None and idle_timeout_s <= 0:
            raise ValueError("idle_timeout_s must be positive")
        self.link = link
        self.batch = batch
        self.retry = retry
        self.idle_timeout_s = idle_timeout_s
        self.progress = TimeSeries(f"batch{batch.batch_id}.delivered_bytes")
        self.blackout_retries = 0
        self.blackout_wait_s = 0.0
        self._record_interval = record_interval_s
        self._last_recorded = None

    def run(
        self,
        start_s: float,
        distance_fn: Callable[[float], float],
        speed_fn: Optional[Callable[[float], float]] = None,
        deadline_s: Optional[float] = None,
    ) -> float:
        """Transfer until the batch completes (or the deadline passes).

        ``distance_fn(t)`` / ``speed_fn(t)`` describe the geometry during
        the transfer.  Returns the completion time; if the deadline cut
        the transfer short, returns the deadline (the batch records the
        partial delivery).  Raises :class:`TransferStalled` if an idle
        timeout is set and no byte lands for that long.
        """
        now = start_s
        self._record(now)
        backoff = (
            ExponentialBackoff(self.retry) if self.retry is not None else None
        )
        last_progress_s = now
        while not self.batch.complete:
            if deadline_s is not None and now >= deadline_s:
                return deadline_s
            if (
                self.idle_timeout_s is not None
                and now - last_progress_s >= self.idle_timeout_s
            ):
                raise TransferStalled(
                    now, self.batch.delivered_bytes, self.batch.remaining_bytes
                )
            if backoff is not None and self.link.is_blacked_out(now):
                # Blacked out: probe again after an exponentially growing
                # delay.  No link epoch runs, so no randomness is drawn
                # while waiting — replay stays deterministic.
                delay = backoff.next_delay_s()
                self.blackout_retries += 1
                self.blackout_wait_s += delay
                now += delay
                continue
            distance = distance_fn(now)
            speed = speed_fn(now) if speed_fn is not None else 0.0
            step = self.link.step(
                now,
                distance_m=distance,
                relative_speed_mps=speed,
                backlog_bytes=self.batch.remaining_bytes,
            )
            self.batch.deliver(step.bytes_delivered)
            now += self.link.epoch_s
            if step.bytes_delivered > 0:
                last_progress_s = now
                if backoff is not None:
                    backoff.reset()
            self._record(now)
        return now

    def _record(self, now: float) -> None:
        if (
            self._last_recorded is None
            or now - self._last_recorded >= self._record_interval
            or self.batch.complete
        ):
            self.progress.record(now, float(self.batch.delivered_bytes))
            self._last_recorded = now
