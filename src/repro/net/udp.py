"""Finite UDP transfers over a wireless link.

:class:`UdpTransfer` delivers one :class:`~repro.net.packets.ImageBatch`
over a :class:`~repro.net.link.WirelessLink` while the geometry (distance,
relative speed) evolves under the caller's control.  It records the
cumulative delivered-bytes curve — exactly what Figure 1 of the paper
plots.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..sim.monitor import TimeSeries
from .link import WirelessLink
from .packets import ImageBatch

__all__ = ["UdpTransfer"]


class UdpTransfer:
    """Pushes a batch through a link, tracking progress over time."""

    def __init__(
        self,
        link: WirelessLink,
        batch: ImageBatch,
        record_interval_s: float = 0.1,
    ) -> None:
        if record_interval_s <= 0:
            raise ValueError("record_interval_s must be positive")
        self.link = link
        self.batch = batch
        self.progress = TimeSeries(f"batch{batch.batch_id}.delivered_bytes")
        self._record_interval = record_interval_s
        self._last_recorded = None

    def run(
        self,
        start_s: float,
        distance_fn: Callable[[float], float],
        speed_fn: Optional[Callable[[float], float]] = None,
        deadline_s: Optional[float] = None,
    ) -> float:
        """Transfer until the batch completes (or the deadline passes).

        ``distance_fn(t)`` / ``speed_fn(t)`` describe the geometry during
        the transfer.  Returns the completion time; if the deadline cut
        the transfer short, returns the deadline (the batch records the
        partial delivery).
        """
        now = start_s
        self._record(now)
        while not self.batch.complete:
            if deadline_s is not None and now >= deadline_s:
                return deadline_s
            distance = distance_fn(now)
            speed = speed_fn(now) if speed_fn is not None else 0.0
            step = self.link.step(
                now,
                distance_m=distance,
                relative_speed_mps=speed,
                backlog_bytes=self.batch.remaining_bytes,
            )
            self.batch.deliver(step.bytes_delivered)
            now += self.link.epoch_s
            self._record(now)
        return now

    def _record(self, now: float) -> None:
        if (
            self._last_recorded is None
            or now - self._last_recorded >= self._record_interval
            or self.batch.complete
        ):
            self.progress.record(now, float(self.batch.delivered_bytes))
            self._last_recorded = now
