"""A byte-accounted FIFO of image batches awaiting delivery.

The sensing loop enqueues batches; the transfer engine drains them in
order.  Used by the end-to-end mission simulations where a UAV collects
several batches before each rendezvous.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, List, Optional

from .packets import ImageBatch

__all__ = ["BatchQueue"]


class BatchQueue:
    """FIFO of :class:`ImageBatch` with aggregate byte accounting."""

    def __init__(self, capacity_bytes: Optional[int] = None) -> None:
        if capacity_bytes is not None and capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive when given")
        self._queue: Deque[ImageBatch] = deque()
        self.capacity_bytes = capacity_bytes
        self.dropped_batches = 0

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def backlog_bytes(self) -> int:
        """Total undelivered bytes across all queued batches."""
        return sum(batch.remaining_bytes for batch in self._queue)

    @property
    def empty(self) -> bool:
        """True when nothing remains to deliver."""
        return self.backlog_bytes == 0

    def enqueue(self, batch: ImageBatch) -> bool:
        """Add a batch; returns False (and counts a drop) when full."""
        if (
            self.capacity_bytes is not None
            and self.backlog_bytes + batch.remaining_bytes > self.capacity_bytes
        ):
            self.dropped_batches += 1
            return False
        self._queue.append(batch)
        return True

    def head(self) -> Optional[ImageBatch]:
        """The oldest incomplete batch, or ``None``."""
        while self._queue and self._queue[0].complete:
            self._queue.popleft()
        return self._queue[0] if self._queue else None

    def deliver(self, nbytes: int) -> int:
        """Drain up to ``nbytes`` from the queue head(s); returns accepted."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        remaining = nbytes
        accepted = 0
        while remaining > 0:
            batch = self.head()
            if batch is None:
                break
            taken = batch.deliver(remaining)
            accepted += taken
            remaining -= taken
        return accepted

    def batches(self) -> List[ImageBatch]:
        """Snapshot of queued batches (including completed, pre-cleanup)."""
        return list(self._queue)
