"""Per-A-MPDU event-driven link engine.

The fluid engine (:class:`~repro.net.link.WirelessLink`) aggregates
whole epochs; this engine plays every A-MPDU exchange as a discrete
event on the simulation kernel, with per-subframe Bernoulli losses and
true selective-repeat retransmission through the
:class:`~repro.mac.blockack.BlockAckScoreboard`.  It is slower but
exposes quantities the fluid model cannot: per-MPDU delivery latency,
retransmission counts, and head-of-line dynamics.

The test suite cross-validates the two engines: their goodput agrees
within a small factor under identical conditions, which is the main
correctness argument for using the fast engine in the campaigns.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..channel.channel import AerialChannel
from ..mac.aggregation import AmpduConfig, AmpduLink
from ..mac.blockack import BlockAckScoreboard
from ..phy.error import ErrorModel
from ..phy.phy80211n import PhyConfig
from ..phy.rate_control import RateController
from ..sim.kernel import Simulator
from ..sim.monitor import SummaryStats
from ..sim.random import RandomStreams

__all__ = ["DetailedTransferResult", "DetailedLink"]


@dataclass
class DetailedTransferResult:
    """Outcome of one event-driven transfer."""

    completion_time_s: float
    bursts: int
    subframes_sent: int
    subframes_delivered: int
    retransmissions: int
    mpdu_latencies_s: List[float] = field(default_factory=list)

    @property
    def delivery_ratio(self) -> float:
        """Acknowledged / transmitted subframes."""
        if self.subframes_sent == 0:
            return 0.0
        return self.subframes_delivered / self.subframes_sent

    def latency_stats(self) -> SummaryStats:
        """Boxplot summary of per-MPDU delivery latency."""
        return SummaryStats.from_samples(self.mpdu_latencies_s)


class DetailedLink:
    """Event-driven counterpart of :class:`~repro.net.link.WirelessLink`."""

    def __init__(
        self,
        channel: AerialChannel,
        controller: RateController,
        error_model: Optional[ErrorModel] = None,
        phy: PhyConfig = PhyConfig(),
        ampdu: Optional[AmpduConfig] = None,
        streams: Optional[RandomStreams] = None,
        window_size: int = 64,
        stream_name: str = "detailed",
    ) -> None:
        self.channel = channel
        self.controller = controller
        self.error_model = error_model if error_model is not None else ErrorModel()
        self.phy = phy
        self.mac = AmpduLink(ampdu if ampdu is not None else AmpduConfig(), phy)
        streams = streams if streams is not None else RandomStreams(seed=0)
        self._rng = streams.get(f"{stream_name}.losses")
        self.window_size = window_size
        self._oracle_hints = hasattr(controller, "expected_goodput_bps")

    # ------------------------------------------------------------------
    def transfer(
        self,
        data_bytes: int,
        distance_fn: Callable[[float], float],
        speed_fn: Optional[Callable[[float], float]] = None,
        start_s: float = 0.0,
        deadline_s: float = 600.0,
    ) -> DetailedTransferResult:
        """Deliver ``data_bytes`` burst by burst; returns full accounting."""
        if data_bytes <= 0:
            raise ValueError("data_bytes must be positive")
        if deadline_s <= 0:
            raise ValueError("deadline must be positive")
        layout = self.mac.config.layout
        total_mpdus = math.ceil(data_bytes / layout.app_payload_bytes)
        sim = Simulator(start_time=start_s)
        scoreboard = BlockAckScoreboard(window_size=self.window_size)
        first_tx_time: Dict[int, float] = {}
        attempts: Dict[int, int] = {}
        latencies: List[float] = []
        stats = {
            "bursts": 0,
            "sent": 0,
            "delivered": 0,
            "retx": 0,
            "done_at": None,
        }
        end_time = start_s + deadline_s

        def burst() -> None:
            if scoreboard.completed >= total_mpdus:
                stats["done_at"] = sim.now
                return
            if sim.now >= end_time:
                return
            now = sim.now
            distance = distance_fn(now)
            speed = speed_fn(now) if speed_fn is not None else 0.0
            snr = self.channel.sample_snr_db(now, distance, speed)
            hint = (
                self.channel.mean_snr_db(distance, speed)
                if self._oracle_hints
                else None
            )
            mcs = self.controller.select(now, snr_hint_db=hint)
            rate = self.phy.data_rate_bps(mcs)
            n_max = self.mac.config.subframes_for_rate(rate)
            remaining = total_mpdus - scoreboard.completed
            batch = scoreboard.next_batch(min(n_max, self.window_size))
            batch = [seq for seq in batch if seq < total_mpdus][: max(1, remaining)]
            if not batch:
                # Window stalled on unacked heads: retransmit the head.
                batch = [scoreboard.window_start]
            per = self.error_model.per(snr, mcs, layout.subframe_bytes)
            delivered = []
            for seq in batch:
                if seq not in first_tx_time:
                    first_tx_time[seq] = now
                attempts[seq] = attempts.get(seq, 0) + 1
                if attempts[seq] > 1:
                    stats["retx"] += 1
                if self._rng.random() >= per:
                    delivered.append(seq)
            newly = scoreboard.acknowledge(delivered)
            airtime = self.mac.burst_airtime_s(mcs, len(batch))
            stats["bursts"] += 1
            stats["sent"] += len(batch)
            stats["delivered"] += len(delivered)
            self.controller.feedback(now, mcs, len(batch), len(delivered))
            for seq in delivered:
                latencies.append(now + airtime - first_tx_time[seq])
            sim.schedule_in(airtime, burst)

        sim.schedule(start_s, burst)
        sim.run(until=end_time)
        completion = (
            stats["done_at"] if stats["done_at"] is not None else end_time
        )
        return DetailedTransferResult(
            completion_time_s=float(completion),
            bursts=stats["bursts"],
            subframes_sent=stats["sent"],
            subframes_delivered=stats["delivered"],
            retransmissions=stats["retx"],
            mpdu_latencies_s=latencies,
        )
