"""Replica-batched measurement campaigns with process-pool fan-out.

The scalar campaigns (:mod:`repro.measurements.campaign`,
:mod:`repro.experiments.fig6`) estimate per-distance throughput medians
by running many independent *replicas* of an iperf session — a Python
loop over epochs per replica.  :func:`run_campaign` replaces that with
the replica-batched engine: one
:class:`~repro.net.batchlink.BatchWirelessLink` steps a whole block of
replicas per epoch in lockstep NumPy, and blocks are dispatched to the
persistent process pool owned by :mod:`repro.exec` (*processes*
because the epoch loop itself is Python; the batch solver's chunk
fan-out uses the same backend's threads).

Everything a worker needs travels in a picklable
:class:`BatchCampaignConfig` — profiles and controllers are named by
spec strings, never by object reference.  Each worker fills a
:class:`~repro.perf.PerfTelemetry` and the parent merges them, so
``repro bench --json`` can report per-stage timings and memo-hit
counters across the whole pool.  Per-shard sample blocks ride home as
:class:`~repro.exec.ArrayPayload` structure-of-arrays — large NumPy
results cross the process boundary through shared memory, not pickle.

:func:`run_scalar_reference` runs the identical workload on the scalar
engine — the baseline for the speedup and agreement numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..channel.channel import (
    AerialChannel,
    BatchAerialChannel,
    ChannelProfile,
    airplane_profile,
    indoor_profile,
    quadrocopter_profile,
)
from ..exec import ArrayPayload, backend_for
from ..faults.outage import BatchOutageSchedule
from ..faults.plan import FaultPlan
from ..net.batchlink import BatchWirelessLink
from ..net.iperf import IperfSession
from ..net.link import WirelessLink
from ..obs import ObsContext
from ..perf import PerfTelemetry, wall_clock
from ..phy.rate_control import batch_controller, scalar_controller
from ..sim.monitor import SummaryStats
from ..sim.random import RandomStreams

__all__ = [
    "BatchCampaignConfig",
    "BatchCampaignResult",
    "run_campaign",
    "run_scalar_reference",
    "profile_by_name",
]

_PROFILES = {
    "airplane": airplane_profile,
    "quadrocopter": quadrocopter_profile,
    "indoor": indoor_profile,
}


def profile_by_name(name: str) -> ChannelProfile:
    """Resolve a picklable profile spec to a :class:`ChannelProfile`."""
    try:
        return _PROFILES[name]()
    except KeyError:
        raise ValueError(
            f"unknown profile {name!r}; expected one of {sorted(_PROFILES)}"
        ) from None


@dataclass(frozen=True)
class BatchCampaignConfig:
    """Picklable description of one fixed-distance campaign.

    The workload mirrors the Fig. 6 methodology: for each distance,
    ``n_replicas`` independent iperf sessions of ``duration_s`` seconds
    at saturated load, readings pooled per distance.
    """

    profile: str = "airplane"
    #: Controller spec: ``"arf"``, ``"oracle"`` or ``"fixed:<mcs>"``.
    controller: str = "arf"
    distances_m: Tuple[float, ...] = (80.0, 160.0, 240.0)
    n_replicas: int = 64
    duration_s: float = 40.0
    seed: int = 1
    relative_speed_mps: float = 0.0
    report_interval_s: float = 1.0
    epoch_s: float = 0.02
    #: (distance, replica) cases per process-pool task.  One shard is
    #: one :class:`BatchWirelessLink` whose replicas may sit at
    #: *different* distances (a per-replica distance array), so NumPy
    #: overhead amortises over the whole block rather than per distance.
    block_size: int = 192
    #: Poisson arrival rate of injected link outages per replica
    #: (0 = fault-free; the campaign is then byte-identical to pre-fault
    #: behaviour).
    outage_rate_per_s: float = 0.0
    #: Mean duration of each injected outage (exponential).
    outage_mean_duration_s: float = 0.0

    def __post_init__(self) -> None:
        if self.n_replicas < 1:
            raise ValueError("n_replicas must be >= 1")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.block_size < 1:
            raise ValueError("block_size must be >= 1")
        if not self.distances_m:
            raise ValueError("distances_m must not be empty")
        if self.outage_rate_per_s < 0:
            raise ValueError("outage_rate_per_s must be non-negative")
        if self.outage_rate_per_s > 0 and self.outage_mean_duration_s <= 0:
            raise ValueError(
                "outage_mean_duration_s must be positive when outages are on"
            )
        profile_by_name(self.profile)  # validate early, before pickling

    @property
    def faults_enabled(self) -> bool:
        """Whether this campaign injects link outages."""
        return self.outage_rate_per_s > 0

    def shards(self) -> List[Tuple[int, Tuple[float, ...]]]:
        """(shard_index, per-replica distances) task list.

        The flattened (distance, replica) case list is cut into blocks
        of at most ``block_size`` cases.
        """
        cases = [
            float(distance)
            for distance in self.distances_m
            for _replica in range(self.n_replicas)
        ]
        return [
            (shard, tuple(cases[start:start + self.block_size]))
            for shard, start in enumerate(
                range(0, len(cases), self.block_size)
            )
        ]


@dataclass
class BatchCampaignResult:
    """Pooled per-distance readings plus merged perf telemetry."""

    samples: Dict[float, List[float]]
    telemetry: PerfTelemetry
    wall_s: float
    n_replicas: int

    def add_sample(self, key: float, throughput_bps: float) -> None:
        """Record one per-interval throughput reading under ``key``."""
        self.samples.setdefault(key, []).append(float(throughput_bps))

    def keys(self) -> List[float]:
        """Sorted distances with at least one reading."""
        return sorted(self.samples)

    def stats(self, key: float) -> SummaryStats:
        """Boxplot summary for one distance."""
        return SummaryStats.from_samples(self.samples[key])

    def medians_mbps(self) -> Dict[float, float]:
        """Median throughput (Mb/s) per distance."""
        return {
            key: float(np.median(values)) / 1e6
            for key, values in sorted(self.samples.items())
        }


# ----------------------------------------------------------------------
# Workers
# ----------------------------------------------------------------------

def _shard_streams(config: BatchCampaignConfig, shard: int) -> RandomStreams:
    """Independent named streams for one shard (fork salt = shard+1)."""
    return RandomStreams(config.seed).fork(shard + 1)


def _replica_fault_plan(config: BatchCampaignConfig, g: int) -> FaultPlan:
    """The outage plan of *global* replica ``g`` — pool-layout free.

    The fault stream is keyed to the replica's global index (its
    position in the flattened (distance, replica) case list), never to
    the shard that happens to execute it or to pool completion order.
    Named streams make ``faults.outage`` independent of the shard
    streams (``channel.*``, ``link.delivery``) even where fork salts
    collide, so enabling faults perturbs nothing else — and the same
    config yields bit-identical campaigns for any worker count.
    """
    rng = RandomStreams(config.seed).fork(g + 1).get("faults.outage")
    return FaultPlan.sampled_outages(
        rng,
        horizon_s=config.duration_s,
        rate_per_s=config.outage_rate_per_s,
        mean_duration_s=config.outage_mean_duration_s,
        name=f"replica{g}",
        seed=config.seed,
    )


def _shard_outages(
    config: BatchCampaignConfig, shard: int, n_replicas: int
) -> Optional[BatchOutageSchedule]:
    """Per-replica outage schedules for one shard (None = fault-free)."""
    if not config.faults_enabled:
        return None
    first_g = shard * config.block_size
    return BatchOutageSchedule(
        [
            _replica_fault_plan(config, first_g + offset).outage_windows_s()
            for offset in range(n_replicas)
        ]
    )


def _shard_obs(
    shard: int,
    samples: Dict[float, List[float]],
    steps: int,
    n_replicas: int,
    sim_end_s: float,
) -> ObsContext:
    """The deterministic obs context describing one shard's work.

    Shared by the live worker and the store-restore path in
    :func:`run_campaign`, so a shard replayed from the persistent cache
    contributes the identical span and ``campaign.*`` counters a live
    shard would — merged campaign observability is invariant to cache
    state.
    """
    obs = ObsContext.enabled(deterministic=True)
    with obs.tracer.span(
        "campaign.shard", sim_start_s=0.0, shard=shard
    ) as handle:
        handle.end_sim(sim_end_s)
    obs.metrics.counter("campaign.epochs").inc(steps * n_replicas)
    obs.metrics.counter("campaign.samples").inc(
        sum(len(v) for v in samples.values())
    )
    return obs


def _run_replica_block(
    config: BatchCampaignConfig,
    shard: int,
    distances_m: Tuple[float, ...],
    collect_obs: bool = False,
) -> Tuple[
    Dict[float, List[float]],
    PerfTelemetry,
    Optional[ObsContext],
    Dict[str, object],
]:
    """One pool task: a block of replicas stepped in one batched link.

    ``distances_m`` holds one entry per replica — replicas of different
    distances ride in the same batch.  Top-level (picklable) so it can
    cross a process boundary; also the sequential fallback path.

    ``collect_obs`` makes the worker fill a *deterministic* obs context
    (span per shard, ``campaign.*`` metrics) shipped back to the parent
    for merging — deterministic so the merged summary is invariant to
    worker count and pool completion order.  The trailing meta dict
    (``steps``, ``sim_end_s``) is what the persistent store needs to
    replay the shard's observability without re-running it.
    """
    n_replicas = len(distances_m)
    telemetry = PerfTelemetry()
    streams = _shard_streams(config, shard)
    channel = BatchAerialChannel(
        profile_by_name(config.profile), n_replicas, streams
    )
    link = BatchWirelessLink(
        channel,
        batch_controller(config.controller, n_replicas),
        streams=streams,
        epoch_s=config.epoch_s,
        outage=_shard_outages(config, shard, n_replicas),
        telemetry=telemetry,
    )
    distance_arr = np.asarray(distances_m, dtype=float)
    interval = config.report_interval_s
    now = 0.0
    end = config.duration_s
    next_report = interval
    interval_bytes = np.zeros(n_replicas, dtype=np.int64)
    rows: List[np.ndarray] = []
    steps = 0
    while now < end:
        step = link.step(
            now,
            distance_m=distance_arr,
            relative_speed_mps=config.relative_speed_mps,
        )
        interval_bytes += step.bytes_delivered
        now += link.epoch_s
        steps += 1
        if now >= next_report - 1e-12:
            rows.append(interval_bytes * 8.0 / interval)
            interval_bytes = np.zeros(n_replicas, dtype=np.int64)
            next_report += interval
    samples: Dict[float, List[float]] = {}
    if rows:
        matrix = np.stack(rows)  # (n_intervals, n_replicas)
        for distance in dict.fromkeys(distances_m):  # unique, ordered
            mask = distance_arr == distance
            samples[distance] = matrix[:, mask].ravel().tolist()
    telemetry.count("mean_cache_hits", channel.mean_cache_hits)
    telemetry.count("mean_cache_misses", channel.mean_cache_misses)
    telemetry.count("shards")
    obs = (
        _shard_obs(shard, samples, steps, n_replicas, now)
        if collect_obs
        else None
    )
    return samples, telemetry, obs, {"steps": steps, "sim_end_s": now}


def _run_block_task(
    args: Tuple,
) -> Tuple[
    Dict[float, List[float]],
    PerfTelemetry,
    Optional[ObsContext],
    Dict[str, object],
]:
    """Unpack helper for backend ``map`` over shard tuples."""
    config, shard, distances_m, collect_obs = args
    return _run_replica_block(config, shard, distances_m, collect_obs)


def _run_block_task_exec(args: Tuple) -> ArrayPayload:
    """Pool-task wrapper: sample blocks as a structure-of-arrays.

    The per-distance reading lists are flattened into three arrays
    (``distances`` / ``lengths`` / ``values``) so the bulk of a
    shard's output can ride the execution backend's shared-memory
    transport; telemetry, obs context and replay meta stay in the
    (small) pickled ``meta`` side.  :func:`_decode_block_output`
    inverts this exactly — float64 in, float64 out — which keeps
    serial and pooled campaigns bit-identical.
    """
    samples, telemetry, obs, meta = _run_block_task(args)
    keys = list(samples)
    values = (
        np.concatenate(
            [np.asarray(samples[key], dtype=float) for key in keys]
        )
        if keys
        else np.zeros(0, dtype=float)
    )
    return ArrayPayload(
        arrays={
            "distances": np.asarray(keys, dtype=float),
            "lengths": np.asarray(
                [len(samples[key]) for key in keys], dtype=np.int64
            ),
            "values": values,
        },
        meta=(telemetry, obs, meta),
    )


def _decode_block_output(payload: ArrayPayload) -> Tuple:
    """Rebuild the worker 4-tuple from its wire payload."""
    telemetry, obs, meta = payload.meta
    distances = payload.arrays["distances"].tolist()
    lengths = payload.arrays["lengths"].tolist()
    values = payload.arrays["values"]
    samples: Dict[float, List[float]] = {}
    pos = 0
    for distance, n in zip(distances, lengths):
        samples[distance] = values[pos:pos + n].tolist()
        pos += n
    return samples, telemetry, obs, meta


# ----------------------------------------------------------------------
# Persistent-store plumbing
# ----------------------------------------------------------------------

def _shard_store_key(
    config: BatchCampaignConfig, shard: int, distances_m: Tuple[float, ...]
) -> str:
    """The persistent-store key of one shard's output.

    A shard's samples are fully determined by ``(config, shard index,
    distances block)``: its random streams fork on ``shard + 1`` and
    its fault plans key on global replica indices derived from the
    shard index — the shard is therefore the safe caching granularity
    (per-distance entries would not be, because replicas of different
    distances share one batched link).
    """
    import dataclasses

    from ..store import CAMPAIGN_CODE_MODULES, config_key

    return config_key(
        "campaign.shard",
        {
            "config": dataclasses.asdict(config),
            "shard": shard,
            "distances": list(distances_m),
        },
        CAMPAIGN_CODE_MODULES,
    )


def _shard_store_body(
    samples: Dict[float, List[float]],
    telemetry: PerfTelemetry,
    meta: Dict[str, object],
) -> dict:
    return {
        "samples": [[d, readings] for d, readings in samples.items()],
        "counters": dict(telemetry.counters),
        "steps": meta["steps"],
        "sim_end_s": meta["sim_end_s"],
    }


def _restore_shard(
    shard: int,
    distances_m: Tuple[float, ...],
    body: Optional[dict],
    collect_obs: bool,
) -> Optional[Tuple]:
    """Rehydrate one shard's worker output from a store entry.

    Returns the same 4-tuple a live worker produces (samples in the
    worker's insertion order, replayed telemetry counters, a rebuilt
    deterministic obs context) or ``None`` when the body is malformed —
    the caller then just re-runs the shard.
    """
    if body is None:
        return None
    try:
        steps = int(body["steps"])
        sim_end_s = float(body["sim_end_s"])
        samples = {
            float(distance): [float(x) for x in readings]
            for distance, readings in body["samples"]
        }
        counters = {
            str(k): int(v) for k, v in dict(body["counters"]).items()
        }
    except (KeyError, TypeError, ValueError):
        return None
    telemetry = PerfTelemetry()
    for name, value in counters.items():
        telemetry.count(name, value)
    obs = (
        _shard_obs(shard, samples, steps, len(distances_m), sim_end_s)
        if collect_obs
        else None
    )
    return samples, telemetry, obs, {"steps": steps, "sim_end_s": sim_end_s}


# ----------------------------------------------------------------------
# Runners
# ----------------------------------------------------------------------

def run_campaign(
    config: BatchCampaignConfig,
    parallel: Optional[bool] = None,
    max_workers: Optional[int] = None,
    obs: Optional[ObsContext] = None,
    cache=None,
    refresh: bool = False,
) -> BatchCampaignResult:
    """Run the campaign on the replica-batched engine.

    Shards are dispatched through the persistent
    :mod:`repro.exec` backend: ``parallel=None`` auto-enables the
    process pool when there are several shards and more than one
    worker; ``True``/``False`` force it; ``max_workers`` pins the pool
    width (``repro.exec.backend_for`` keeps one warm pool per width).
    If the pool cannot be started (restricted environments), the
    backend degrades to the sequential path and still returns full
    results.

    ``obs`` collects per-shard spans and ``campaign.*`` metrics: each
    worker fills a deterministic context, the parent merges them all
    into ``obs``, so the aggregate is invariant to worker count.

    ``cache``/``refresh`` control the persistent result store (see
    :mod:`repro.api`): cached shards are restored without running,
    only missing shards are dispatched to the pool, and outputs merge
    in shard order — warm samples are bit-identical to the cold run's.
    """
    from ..store import StoreReport, record_store_metrics, resolve_store

    t_start = wall_clock()
    store = resolve_store(cache)
    shards = config.shards()
    collect = obs is not None
    restored: Dict[int, Tuple] = {}
    before = store.snapshot_counters() if store is not None else {}
    keys: Dict[int, str] = {}
    if store is not None:
        keys = {
            shard: _shard_store_key(config, shard, distances)
            for shard, distances in shards
        }
        if not refresh:
            touched = []
            for shard, distances in shards:
                entry = _restore_shard(
                    shard, distances, store.get(keys[shard], touch=False),
                    collect,
                )
                if entry is not None:
                    restored[shard] = entry
                    touched.append(keys[shard])
            store.touch_many(touched)
    run_span = None
    if obs is not None and obs.tracer is not None:
        run_span = obs.tracer.span("campaign.run", sim_start_s=0.0)
        run_span.__enter__()
    tasks = [
        (config, shard, distances, collect)
        for shard, distances in shards
        if shard not in restored
    ]
    try:
        live = [
            _decode_block_output(payload)
            for payload in backend_for(max_workers).map(
                _run_block_task_exec,
                tasks,
                parallel=parallel,
                family="campaign.shard",
            )
        ]
    finally:
        if run_span is not None:
            run_span.annotate(shards=len(shards))
            run_span.end_sim(config.duration_s)
            run_span.__exit__(None, None, None)
    if store is not None and live:
        store.put_many(
            {
                keys[task[1]]: _shard_store_body(out[0], out[1], out[3])
                for task, out in zip(tasks, live)
            }
        )

    # Merge in shard order regardless of which side produced the output.
    by_shard = dict(restored)
    for task, out in zip(tasks, live):
        by_shard[task[1]] = out
    outputs = [by_shard[shard] for shard, _ in shards]
    samples: Dict[float, List[float]] = {}
    telemetry = PerfTelemetry.merged(tel for _, tel, _, _ in outputs)
    for shard_samples, _, _, _ in outputs:
        for distance, readings in shard_samples.items():
            samples.setdefault(distance, []).extend(readings)
    if obs is not None:
        obs.merge(ObsContext.merged(part for _, _, part, _ in outputs))
        _record_campaign_totals(obs, config)
        if store is not None:
            warm = sum(
                len(distances)
                for shard, distances in shards
                if shard in restored
            )
            total = sum(len(distances) for _, distances in shards)
            record_store_metrics(
                obs, store, before,
                StoreReport(
                    enabled=True,
                    points=total,
                    warm_points=warm,
                    entry_hits=len(restored),
                    entry_misses=len(shards) - len(restored),
                ),
            )
    return BatchCampaignResult(
        samples=samples,
        telemetry=telemetry,
        wall_s=wall_clock() - t_start,
        n_replicas=config.n_replicas,
    )


def _record_campaign_totals(
    obs: ObsContext, config: BatchCampaignConfig
) -> None:
    """Parent-side ``campaign.*`` metrics, shared by both engines.

    Emitting the same metric names from :func:`run_campaign` and
    :func:`run_scalar_reference` is the parity contract the RL105-style
    metric-name test pins: the batch engine must not grow observability
    the scalar baseline lacks (or vice versa).
    """
    if obs.metrics is not None:
        obs.metrics.counter("campaign.replicas").inc(
            len(config.distances_m) * config.n_replicas
        )
        obs.metrics.gauge("campaign.duration_s").set(config.duration_s)


def run_scalar_reference(
    config: BatchCampaignConfig,
    n_replicas: Optional[int] = None,
    obs: Optional[ObsContext] = None,
) -> BatchCampaignResult:
    """The identical workload on the scalar engine (the baseline).

    ``n_replicas`` can shrink the replica count so benchmarks can time
    a scalar slice and extrapolate instead of paying the full cost.
    ``obs`` records the same ``campaign.*`` metric names as
    :func:`run_campaign` — the scalar↔batch parity contract.
    """
    if n_replicas is not None:
        config = replace(config, n_replicas=n_replicas)
    t_start = wall_clock()
    run_span = None
    if obs is not None and obs.tracer is not None:
        run_span = obs.tracer.span("campaign.run", sim_start_s=0.0)
        run_span.__enter__()
    samples: Dict[float, List[float]] = {}
    epochs = 0
    try:
        for distance in config.distances_m:
            pooled = samples.setdefault(float(distance), [])
            for replica in range(config.n_replicas):
                streams = RandomStreams(config.seed).fork(replica + 1)
                link = WirelessLink(
                    AerialChannel(profile_by_name(config.profile), streams),
                    scalar_controller(config.controller),
                    streams=streams,
                    epoch_s=config.epoch_s,
                )
                session = IperfSession(link, config.report_interval_s)
                readings = session.run(
                    0.0,
                    config.duration_s,
                    lambda t: float(distance),
                    (lambda t: config.relative_speed_mps)
                    if config.relative_speed_mps
                    else None,
                )
                pooled.extend(readings.values.tolist())
                epochs += int(round(config.duration_s / config.epoch_s))
    finally:
        if run_span is not None:
            run_span.annotate(shards=1)
            run_span.end_sim(config.duration_s)
            run_span.__exit__(None, None, None)
    telemetry = PerfTelemetry()
    telemetry.count("replica_epochs", epochs)
    if obs is not None:
        if obs.metrics is not None:
            obs.metrics.counter("campaign.epochs").inc(epochs)
            obs.metrics.counter("campaign.samples").inc(
                sum(len(v) for v in samples.values())
            )
        _record_campaign_totals(obs, config)
    return BatchCampaignResult(
        samples=samples,
        telemetry=telemetry,
        wall_s=wall_clock() - t_start,
        n_replicas=config.n_replicas,
    )
