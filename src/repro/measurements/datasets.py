"""Values reported by the paper, for calibration and comparison.

Everything here is transcribed from Asadpour et al., CoNEXT 2013 —
either stated explicitly in the text (the throughput fits, the baseline
scenario parameters) or digitised from the figures (the Fig. 1 transfer
curves, the Fig. 6 best-MCS regions).  The benchmark harness prints
these next to the simulated values so EXPERIMENTS.md can record
paper-vs-measured for every table and figure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = [
    "PaperLogFit",
    "AIRPLANE_FIT",
    "QUADROCOPTER_FIT",
    "FIG1_HOVER_RATES_MBPS",
    "FIG1_MOVING_RATE_MBPS",
    "FIG1_APPROACH_SPEED_MPS",
    "FIG1_DATA_MB",
    "FIG1_START_DISTANCE_M",
    "FIG1_CROSSOVER_MB",
    "FIG5_DISTANCES_M",
    "FIG6_DISTANCES_M",
    "FIG6_BEST_MCS_REGIONS",
    "FIG6_FIXED_CANDIDATES",
    "FIG7_HOVER_DISTANCES_M",
    "FIG7_MOVING_SPEED_MPS",
    "FIG7_SPEED_SWEEP_MPS",
    "FIG7_SPEED_SWEEP_DISTANCE_M",
    "INDOOR_THROUGHPUT_MBPS",
    "AIRPLANE_RELATIVE_SPEED_RANGE_MPS",
    "MIN_SAFE_SEPARATION_M",
]


@dataclass(frozen=True)
class PaperLogFit:
    """A throughput-vs-distance fit ``s(d) = 1e6 (slope log2 d + intercept)``."""

    slope_mbps_per_octave: float
    intercept_mbps: float
    r_squared: float

    def throughput_bps(self, distance_m: float) -> float:
        """Evaluate the fit (clamped at zero) in bit/s."""
        if distance_m <= 0:
            raise ValueError("distance must be positive")
        mbps = self.slope_mbps_per_octave * math.log2(distance_m) + self.intercept_mbps
        return max(0.0, mbps) * 1e6


#: s_airplane(d) = 1e6 (-5.56 log2 d + 49), R^2 = 0.90 (paper Section 4).
AIRPLANE_FIT = PaperLogFit(-5.56, 49.0, 0.90)

#: s_quadrocopter(d) = 1e6 (-10.5 log2 d + 73), R^2 = 0.96 (paper Section 4).
QUADROCOPTER_FIT = PaperLogFit(-10.5, 73.0, 0.96)

# ----------------------------------------------------------------------
# Figure 1 — the motivating experiment (quadrocopters, 20 MB at 80 m)
# ----------------------------------------------------------------------

#: Hover-and-transmit rates by transmit distance, digitised from Fig. 1.
FIG1_HOVER_RATES_MBPS: Dict[int, float] = {20: 36.0, 40: 35.0, 60: 33.0, 80: 17.8}
#: Throughput while approaching at ~8 m/s ('moving' curve of Fig. 1).
FIG1_MOVING_RATE_MBPS = 8.5
FIG1_APPROACH_SPEED_MPS = 8.0
FIG1_DATA_MB = 20.0
FIG1_START_DISTANCE_M = 80.0
#: Data size at which 'd=60' starts beating 'd=80' (paper: ~15 MB).
FIG1_CROSSOVER_MB = 15.0

# ----------------------------------------------------------------------
# Figures 5-7 — measurement campaigns
# ----------------------------------------------------------------------

#: Distance bins of the airplane throughput boxplots (Fig. 5).
FIG5_DISTANCES_M: List[int] = list(range(20, 321, 20))

#: Distance bins of the fixed-MCS comparison (Fig. 6).
FIG6_DISTANCES_M: List[int] = list(range(20, 261, 20))

#: Best fixed MCS per distance band (paper Fig. 6 narrative).
FIG6_BEST_MCS_REGIONS: List[Tuple[int, int, int]] = [
    (20, 160, 3),
    (180, 220, 1),
    (240, 260, 8),
]

#: The fixed rates the paper evaluated.
FIG6_FIXED_CANDIDATES: List[int] = [1, 2, 3, 8]

#: Distances of the quadrocopter hover tests (Fig. 7, left).
FIG7_HOVER_DISTANCES_M: List[int] = [20, 40, 60, 80]
#: Approach speed of the 'moving' tests (Fig. 7, centre).
FIG7_MOVING_SPEED_MPS = 8.0
#: Speeds of the cruise-speed sweep (Fig. 7, right).
FIG7_SPEED_SWEEP_MPS: List[float] = [0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 15.0]
FIG7_SPEED_SWEEP_DISTANCE_M = 60.0

#: The authors' indoor 802.11n reference (Section 3).
INDOOR_THROUGHPUT_MBPS = 176.0

#: Relative speeds observed between the airplanes (Section 3).
AIRPLANE_RELATIVE_SPEED_RANGE_MPS = (15.0, 26.0)

#: Collision-safety floor on inter-UAV distance (Section 4).
MIN_SAFE_SEPARATION_M = 20.0
