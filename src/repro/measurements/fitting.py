"""Least-squares fitting of throughput-vs-distance measurements.

The paper fits ``s(d) = a log2(d) + b`` (in Mb/s) to the median
throughput per distance and reports the coefficient of determination.
:func:`fit_log2` reproduces that procedure on simulated campaigns, so
the pipeline campaign -> fit -> optimiser mirrors the paper end to end.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["Log2Fit", "fit_log2", "r_squared"]


@dataclass(frozen=True)
class Log2Fit:
    """A fitted ``s(d) = slope log2(d) + intercept`` law (Mb/s)."""

    slope_mbps_per_octave: float
    intercept_mbps: float
    r_squared: float
    n_points: int

    def throughput_mbps(self, distance_m: float) -> float:
        """Fitted throughput in Mb/s (clamped at zero)."""
        if distance_m <= 0:
            raise ValueError("distance must be positive")
        return max(
            0.0,
            self.slope_mbps_per_octave * math.log2(distance_m)
            + self.intercept_mbps,
        )

    def throughput_bps(self, distance_m: float) -> float:
        """Fitted throughput in bit/s."""
        return self.throughput_mbps(distance_m) * 1e6


def r_squared(observed: Sequence[float], predicted: Sequence[float]) -> float:
    """Coefficient of determination of ``predicted`` against ``observed``."""
    obs = np.asarray(list(observed), dtype=float)
    pred = np.asarray(list(predicted), dtype=float)
    if obs.shape != pred.shape or obs.size == 0:
        raise ValueError("observed and predicted must be equal-length, non-empty")
    ss_res = float(np.sum((obs - pred) ** 2))
    ss_tot = float(np.sum((obs - obs.mean()) ** 2))
    # Degenerate fit: all observations (numerically) equal.  The sums of
    # squares carry accumulated rounding error, so compare against a
    # tolerance scaled to the data's magnitude rather than exactly 0.0.
    tol = 1e-12 * max(1.0, float(np.max(np.abs(obs))) ** 2)
    if ss_tot <= tol:
        return 1.0 if ss_res <= tol else 0.0
    return 1.0 - ss_res / ss_tot


def fit_log2(
    distances_m: Sequence[float], throughputs_mbps: Sequence[float]
) -> Log2Fit:
    """Least-squares fit of ``s = a log2 d + b`` to the given medians."""
    d = np.asarray(list(distances_m), dtype=float)
    s = np.asarray(list(throughputs_mbps), dtype=float)
    if d.shape != s.shape:
        raise ValueError("distances and throughputs must have equal length")
    if d.size < 2:
        raise ValueError("need at least two points to fit")
    if np.any(d <= 0):
        raise ValueError("distances must be positive")
    design = np.vstack([np.log2(d), np.ones_like(d)]).T
    (slope, intercept), *_ = np.linalg.lstsq(design, s, rcond=None)
    predicted = design @ np.array([slope, intercept])
    return Log2Fit(
        slope_mbps_per_octave=float(slope),
        intercept_mbps=float(intercept),
        r_squared=r_squared(s, predicted),
        n_points=int(d.size),
    )
