"""Calibration validation: does the simulator still match the paper?

The channel/PHY parameters in :mod:`repro.channel.channel` were fitted
so that the simulated campaigns reproduce the paper's published
numbers.  :func:`validate_calibration` re-runs reduced versions of the
anchor campaigns and reports the deviation from each target, so any
change to the stack that silently breaks the reproduction is caught by
one call (and by the test suite, which asserts on this report).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .campaign import AirplaneFlybyCampaign, QuadHoverCampaign
from .datasets import AIRPLANE_FIT, QUADROCOPTER_FIT
from .fitting import Log2Fit, fit_log2

__all__ = ["CalibrationCheck", "CalibrationReport", "validate_calibration"]


@dataclass(frozen=True)
class CalibrationCheck:
    """One paper-anchored quantity and its simulated counterpart."""

    name: str
    paper_value: float
    measured_value: float
    tolerance: float

    @property
    def deviation(self) -> float:
        """Absolute difference from the paper's value."""
        return abs(self.measured_value - self.paper_value)

    @property
    def passed(self) -> bool:
        """Whether the simulated value sits within tolerance."""
        return self.deviation <= self.tolerance


@dataclass(frozen=True)
class CalibrationReport:
    """All calibration checks in one bundle."""

    checks: List[CalibrationCheck]
    airplane_fit: Log2Fit
    quadrocopter_fit: Log2Fit

    @property
    def all_passed(self) -> bool:
        """True when every anchor is within tolerance."""
        return all(check.passed for check in self.checks)

    def failures(self) -> List[CalibrationCheck]:
        """The checks that drifted out of tolerance."""
        return [check for check in self.checks if not check.passed]

    def summary_lines(self) -> List[str]:
        """Human-readable report."""
        lines = []
        for check in self.checks:
            status = "ok " if check.passed else "FAIL"
            lines.append(
                f"[{status}] {check.name}: paper {check.paper_value:+.2f}, "
                f"measured {check.measured_value:+.2f} "
                f"(tolerance {check.tolerance:g})"
            )
        return lines


def validate_calibration(
    seed: int = 11, n_passes: int = 6, hover_duration_s: float = 40.0
) -> CalibrationReport:
    """Re-run the two anchor campaigns and compare against the paper."""
    flyby = AirplaneFlybyCampaign(seed=seed, n_passes=n_passes).run()
    medians = {
        k: v
        for k, v in flyby.medians_mbps().items()
        if len(flyby.samples[k]) >= 5
    }
    air_fit = fit_log2(list(medians.keys()), list(medians.values()))

    hover = QuadHoverCampaign(
        seed=seed, duration_s=hover_duration_s
    ).run()
    hover_medians = hover.medians_mbps()
    quad_fit = fit_log2(list(hover_medians.keys()), list(hover_medians.values()))

    checks = [
        CalibrationCheck(
            "airplane fit slope (Mb/s per octave)",
            AIRPLANE_FIT.slope_mbps_per_octave,
            air_fit.slope_mbps_per_octave,
            tolerance=1.5,
        ),
        CalibrationCheck(
            "airplane fit intercept (Mb/s)",
            AIRPLANE_FIT.intercept_mbps,
            air_fit.intercept_mbps,
            tolerance=8.0,
        ),
        CalibrationCheck(
            "airplane fit R^2",
            AIRPLANE_FIT.r_squared,
            air_fit.r_squared,
            tolerance=0.12,
        ),
        CalibrationCheck(
            "quadrocopter fit slope (Mb/s per octave)",
            QUADROCOPTER_FIT.slope_mbps_per_octave,
            quad_fit.slope_mbps_per_octave,
            tolerance=3.0,
        ),
        CalibrationCheck(
            "quadrocopter fit intercept (Mb/s)",
            QUADROCOPTER_FIT.intercept_mbps,
            quad_fit.intercept_mbps,
            tolerance=15.0,
        ),
        CalibrationCheck(
            "quadrocopter fit R^2",
            QUADROCOPTER_FIT.r_squared,
            quad_fit.r_squared,
            tolerance=0.1,
        ),
    ]
    return CalibrationReport(
        checks=checks, airplane_fit=air_fit, quadrocopter_fit=quad_fit
    )
