"""Simulated measurement campaigns (the paper's Section 3 field tests).

Each campaign flies real :class:`~repro.airframe.Uav` objects through
the waypoint patterns described in the paper, measures the link with
the iperf-style estimator, computes inter-UAV distance the way the
testbed did (Haversine on noisy GPS fixes), and reduces the readings to
per-distance-bin boxplot statistics:

* :class:`AirplaneFlybyCampaign` — two Swinglets shuttling between far
  waypoints at 80 m and 100 m altitude, passing each other at relative
  speeds of 15-26 m/s (Figs. 4a, 5, 6).
* :class:`QuadHoverCampaign` — two Arducopters hovering at 10 m
  altitude, separations 20-80 m (Figs. 4b, 7 left).
* :class:`QuadApproachCampaign` — one quadrocopter repeatedly closing
  on a hovering one at ~8 m/s while transmitting (Fig. 7 centre).
* :class:`QuadSpeedCampaign` — transmitting at different cruise speeds
  at ~60 m distance (Fig. 7 right).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..airframe.autopilot import Uav
from ..airframe.platform import AIRPLANE, QUADROCOPTER
from ..channel.channel import (
    AerialChannel,
    ChannelProfile,
    airplane_profile,
    quadrocopter_profile,
)
from ..geo.coords import EnuPoint, GeoPoint, LocalFrame
from ..geo.gps import GpsReceiver
from ..geo.haversine import slant_range_m
from ..geo.trajectory import Trace, Waypoint
from ..net.link import WirelessLink
from ..phy.rate_control import ArfController, RateController
from ..sim.monitor import SummaryStats
from ..sim.random import RandomStreams

__all__ = [
    "CampaignResult",
    "AirplaneFlybyCampaign",
    "QuadHoverCampaign",
    "QuadApproachCampaign",
    "QuadSpeedCampaign",
    "default_controller_factory",
]

ControllerFactory = Callable[[RandomStreams], RateController]


def default_controller_factory(streams: RandomStreams) -> RateController:
    """The testbed's auto-rate behaviour (vendor ARF)."""
    return ArfController()


@dataclass
class CampaignResult:
    """Per-bin throughput statistics plus the recorded flight traces."""

    #: Map from bin key (distance in m, or speed in m/s) to its samples.
    samples: Dict[float, List[float]] = field(default_factory=dict)
    traces: List[Trace] = field(default_factory=list)

    def add_sample(self, key: float, throughput_bps: float) -> None:
        """Record one per-interval throughput reading under ``key``."""
        self.samples.setdefault(key, []).append(float(throughput_bps))

    def keys(self) -> List[float]:
        """Sorted bin keys with at least one sample."""
        return sorted(self.samples)

    def stats(self, key: float) -> SummaryStats:
        """Boxplot summary for one bin."""
        return SummaryStats.from_samples(self.samples[key])

    def medians_mbps(self) -> Dict[float, float]:
        """Median throughput (Mb/s) per bin."""
        return {
            key: float(np.median(values)) / 1e6
            for key, values in sorted(self.samples.items())
        }


def _bin_distance(distance_m: float, width_m: float, max_m: float) -> Optional[float]:
    """Snap a distance to the nearest bin centre; None when out of range."""
    if distance_m <= 0 or distance_m > max_m + width_m / 2:
        return None
    centre = round(distance_m / width_m) * width_m
    if centre <= 0 or centre > max_m:
        return None
    return float(centre)


class _LinkedPair:
    """Two UAVs with a measured link between them."""

    def __init__(
        self,
        profile: ChannelProfile,
        streams: RandomStreams,
        controller_factory: ControllerFactory,
        origin: GeoPoint = GeoPoint(47.3769, 8.5417, 400.0),
    ) -> None:
        self.streams = streams
        self.frame = LocalFrame(origin)
        self.channel = AerialChannel(profile, streams)
        self.link = WirelessLink(
            self.channel, controller_factory(streams), streams=streams
        )
        self.gps_a = GpsReceiver(self.frame, streams.get("gps.a"))
        self.gps_b = GpsReceiver(self.frame, streams.get("gps.b"))

    def measured_distance(self, now_s: float, a: Uav, b: Uav) -> float:
        """Inter-UAV distance: Haversine + altitude on noisy GPS fixes."""
        fix_a = self.gps_a.fix(now_s, a.position)
        fix_b = self.gps_b.fix(now_s, b.position)
        return slant_range_m(fix_a, fix_b)


class AirplaneFlybyCampaign:
    """Two airplanes shuttling between waypoints, passing each other.

    Reproduces the Fig. 4(a) geometry: straight legs of ~500 m flown in
    anti-phase at 80 m and 100 m altitude, yielding pass-bys with
    relative speeds around twice the cruise speed and separations
    sweeping 20-400 m.
    """

    def __init__(
        self,
        seed: int = 0,
        n_passes: int = 8,
        leg_half_length_m: float = 210.0,
        lateral_offset_m: float = 10.0,
        bin_width_m: float = 20.0,
        max_bin_m: float = 320.0,
        tick_s: float = 0.1,
        controller_factory: ControllerFactory = default_controller_factory,
        profile: Optional[ChannelProfile] = None,
    ) -> None:
        if n_passes < 1:
            raise ValueError("n_passes must be >= 1")
        self.seed = seed
        self.n_passes = n_passes
        self.leg_half_length_m = leg_half_length_m
        self.lateral_offset_m = lateral_offset_m
        self.bin_width_m = bin_width_m
        self.max_bin_m = max_bin_m
        self.tick_s = tick_s
        self.controller_factory = controller_factory
        self.profile = profile if profile is not None else airplane_profile()

    def run(self) -> CampaignResult:
        """Fly the passes and return binned throughput statistics."""
        streams = RandomStreams(self.seed)
        pair = _LinkedPair(self.profile, streams, self.controller_factory)
        half = self.leg_half_length_m
        east = EnuPoint(half, 0.0, 80.0)
        west = EnuPoint(-half, 0.0, 80.0)
        east_hi = EnuPoint(half, self.lateral_offset_m, 100.0)
        west_hi = EnuPoint(-half, self.lateral_offset_m, 100.0)

        a = Uav("airplane-a", AIRPLANE, west, heading_rad=math.pi / 2)
        b = Uav("airplane-b", AIRPLANE, east_hi, heading_rad=-math.pi / 2)
        mission_a: List[Waypoint] = []
        mission_b: List[Waypoint] = []
        for _ in range(self.n_passes):
            mission_a.extend(
                [Waypoint(east, acceptance_radius_m=15.0),
                 Waypoint(west, acceptance_radius_m=15.0)]
            )
            mission_b.extend(
                [Waypoint(west_hi, acceptance_radius_m=15.0),
                 Waypoint(east_hi, acceptance_radius_m=15.0)]
            )
        a.autopilot.load_mission(mission_a)
        b.autopilot.load_mission(mission_b)

        result = CampaignResult()
        now = 0.0
        interval_bytes = 0
        interval_distances: List[float] = []
        last_distance: Optional[float] = None
        while not (a.autopilot.mission_complete and b.autopilot.mission_complete):
            a.tick(now, self.tick_s)
            b.tick(now, self.tick_s)
            now += self.tick_s
            distance = pair.measured_distance(now, a, b)
            if last_distance is None:
                rel_speed = 0.0
            else:
                rel_speed = abs(distance - last_distance) / self.tick_s
            last_distance = distance
            step = pair.link.step(
                now,
                distance_m=max(distance, self.profile.min_distance_m),
                relative_speed_mps=min(rel_speed, 40.0),
                duration_s=self.tick_s,
            )
            interval_bytes += step.bytes_delivered
            interval_distances.append(distance)
            if len(interval_distances) >= int(round(1.0 / self.tick_s)):
                throughput = interval_bytes * 8.0
                mean_distance = float(np.mean(interval_distances))
                key = _bin_distance(mean_distance, self.bin_width_m, self.max_bin_m)
                if key is not None:
                    result.add_sample(key, throughput)
                interval_bytes = 0
                interval_distances = []
        result.traces = [a.trace, b.trace]
        return result


class QuadHoverCampaign:
    """Two hovering quadrocopters at a fixed separation (Fig. 7 left)."""

    def __init__(
        self,
        seed: int = 0,
        distances_m: Sequence[float] = (20.0, 40.0, 60.0, 80.0),
        duration_s: float = 60.0,
        altitude_m: float = 10.0,
        n_replicas: int = 3,
        controller_factory: ControllerFactory = default_controller_factory,
        profile: Optional[ChannelProfile] = None,
    ) -> None:
        if n_replicas < 1:
            raise ValueError("n_replicas must be >= 1")
        self.seed = seed
        self.distances_m = list(distances_m)
        self.duration_s = duration_s
        self.altitude_m = altitude_m
        self.n_replicas = n_replicas
        self.controller_factory = controller_factory
        self.profile = profile if profile is not None else quadrocopter_profile()

    def run(self) -> CampaignResult:
        """Hover at each separation and collect per-second readings."""
        result = CampaignResult()
        cases = [
            (distance, replica)
            for distance in self.distances_m
            for replica in range(self.n_replicas)
        ]
        for i, (distance, _replica) in enumerate(cases):
            streams = RandomStreams(self.seed).fork(i + 1)
            pair = _LinkedPair(self.profile, streams, self.controller_factory)
            a = Uav("quad-a", QUADROCOPTER, EnuPoint(0.0, 0.0, self.altitude_m))
            b = Uav(
                "quad-b", QUADROCOPTER, EnuPoint(distance, 0.0, self.altitude_m)
            )
            hold = Waypoint(a.position, hold_s=self.duration_s)
            hold_b = Waypoint(b.position, hold_s=self.duration_s)
            a.autopilot.load_mission([hold])
            b.autopilot.load_mission([hold_b])
            now = 0.0
            tick = 0.1
            interval_bytes = 0
            ticks_per_interval = int(round(1.0 / tick))
            n_ticks = 0
            while now < self.duration_s:
                a.tick(now, tick)
                b.tick(now, tick)
                now += tick
                measured = pair.measured_distance(now, a, b)
                step = pair.link.step(
                    now,
                    distance_m=max(measured, self.profile.min_distance_m),
                    relative_speed_mps=0.0,
                    duration_s=tick,
                )
                interval_bytes += step.bytes_delivered
                n_ticks += 1
                if n_ticks >= ticks_per_interval:
                    result.add_sample(float(distance), interval_bytes * 8.0)
                    interval_bytes = 0
                    n_ticks = 0
            result.traces.extend([a.trace, b.trace])
        return result


class QuadApproachCampaign:
    """A quadrocopter transmits while closing on a hovering one.

    Reproduces the 'moving' tests of Fig. 7 (centre): repeated
    approaches at ~8 m/s from ``start_distance_m`` down to the safety
    floor, readings binned by distance.
    """

    def __init__(
        self,
        seed: int = 0,
        n_approaches: int = 12,
        start_distance_m: float = 90.0,
        stop_distance_m: float = 10.0,
        approach_speed_mps: float = 8.0,
        bin_width_m: float = 20.0,
        altitude_m: float = 10.0,
        controller_factory: ControllerFactory = default_controller_factory,
        profile: Optional[ChannelProfile] = None,
    ) -> None:
        if stop_distance_m >= start_distance_m:
            raise ValueError("stop distance must be below start distance")
        self.seed = seed
        self.n_approaches = n_approaches
        self.start_distance_m = start_distance_m
        self.stop_distance_m = stop_distance_m
        self.approach_speed_mps = approach_speed_mps
        self.bin_width_m = bin_width_m
        self.altitude_m = altitude_m
        self.controller_factory = controller_factory
        self.profile = profile if profile is not None else quadrocopter_profile()

    def run(self) -> CampaignResult:
        """Fly the approaches and return distance-binned statistics."""
        result = CampaignResult()
        for i in range(self.n_approaches):
            streams = RandomStreams(self.seed).fork(i + 1)
            pair = _LinkedPair(self.profile, streams, self.controller_factory)
            target = Uav("quad-rx", QUADROCOPTER, EnuPoint(0.0, 0.0, self.altitude_m))
            mover = Uav(
                "quad-tx",
                QUADROCOPTER,
                EnuPoint(self.start_distance_m, 0.0, self.altitude_m),
            )
            target.autopilot.load_mission([Waypoint(target.position, hold_s=120.0)])
            mover.autopilot.load_mission(
                [
                    Waypoint(
                        EnuPoint(self.stop_distance_m, 0.0, self.altitude_m),
                        speed_mps=self.approach_speed_mps,
                        acceptance_radius_m=2.0,
                    )
                ]
            )
            now = 0.0
            tick = 0.1
            interval_bytes = 0
            interval_distances: List[float] = []
            while not mover.autopilot.mission_complete and now < 120.0:
                target.tick(now, tick)
                mover.tick(now, tick)
                now += tick
                measured = pair.measured_distance(now, target, mover)
                step = pair.link.step(
                    now,
                    distance_m=max(measured, self.profile.min_distance_m),
                    relative_speed_mps=mover.speed_mps,
                    duration_s=tick,
                )
                interval_bytes += step.bytes_delivered
                interval_distances.append(measured)
                if len(interval_distances) >= int(round(1.0 / tick)):
                    key = _bin_distance(
                        float(np.mean(interval_distances)),
                        self.bin_width_m,
                        self.start_distance_m,
                    )
                    if key is not None:
                        result.add_sample(key, interval_bytes * 8.0)
                    interval_bytes = 0
                    interval_distances = []
            result.traces.append(mover.trace)
        return result


class QuadSpeedCampaign:
    """Throughput vs cruise speed at ~60 m separation (Fig. 7 right).

    The transmitter shuttles along a line offset laterally from the
    hovering receiver, so the separation stays near the target distance
    while the airspeed takes the commanded value.
    """

    def __init__(
        self,
        seed: int = 0,
        speeds_mps: Sequence[float] = (0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 15.0),
        distance_m: float = 60.0,
        shuttle_half_length_m: float = 20.0,
        duration_s: float = 50.0,
        altitude_m: float = 10.0,
        controller_factory: ControllerFactory = default_controller_factory,
        profile: Optional[ChannelProfile] = None,
    ) -> None:
        self.seed = seed
        self.speeds_mps = list(speeds_mps)
        self.distance_m = distance_m
        self.shuttle_half_length_m = shuttle_half_length_m
        self.duration_s = duration_s
        self.altitude_m = altitude_m
        self.controller_factory = controller_factory
        self.profile = profile if profile is not None else quadrocopter_profile()

    def run(self) -> CampaignResult:
        """Measure each commanded speed; bin keys are speeds in m/s."""
        result = CampaignResult()
        for i, speed in enumerate(self.speeds_mps):
            streams = RandomStreams(self.seed).fork(i + 1)
            pair = _LinkedPair(self.profile, streams, self.controller_factory)
            rx = Uav("quad-rx", QUADROCOPTER, EnuPoint(0.0, 0.0, self.altitude_m))
            tx = Uav(
                "quad-tx",
                QUADROCOPTER,
                EnuPoint(-self.shuttle_half_length_m, self.distance_m, self.altitude_m),
            )
            rx.autopilot.load_mission(
                [Waypoint(rx.position, hold_s=self.duration_s + 10.0)]
            )
            if speed > 0:
                ends = [
                    EnuPoint(self.shuttle_half_length_m, self.distance_m, self.altitude_m),
                    EnuPoint(-self.shuttle_half_length_m, self.distance_m, self.altitude_m),
                ]
                mission = []
                # Enough shuttle legs to outlast the measurement window.
                legs = int(
                    math.ceil(
                        self.duration_s
                        * speed
                        / (2.0 * self.shuttle_half_length_m)
                    )
                ) + 2
                for leg in range(legs):
                    mission.append(
                        Waypoint(ends[leg % 2], speed_mps=speed,
                                 acceptance_radius_m=2.0)
                    )
                tx.autopilot.load_mission(mission)
            else:
                tx.autopilot.load_mission(
                    [Waypoint(tx.position, hold_s=self.duration_s + 10.0)]
                )
            now = 0.0
            tick = 0.1
            interval_bytes = 0
            n_ticks = 0
            while now < self.duration_s:
                rx.tick(now, tick)
                tx.tick(now, tick)
                now += tick
                measured = pair.measured_distance(now, rx, tx)
                step = pair.link.step(
                    now,
                    distance_m=max(measured, self.profile.min_distance_m),
                    relative_speed_mps=tx.speed_mps,
                    duration_s=tick,
                )
                interval_bytes += step.bytes_delivered
                n_ticks += 1
                if n_ticks >= int(round(1.0 / tick)):
                    result.add_sample(float(speed), interval_bytes * 8.0)
                    interval_bytes = 0
                    n_ticks = 0
            result.traces.append(tx.trace)
        return result
