"""Per-hop now-vs-ship decisions for relay chains (DP over Eq. 1/2).

Each hop of a :class:`~repro.relay.chain.RelayChain` chooses between
three candidate policies:

* ``optimal`` — the hop's own Eq. 2 solution (ship to ``dopt``, then
  transmit), taken verbatim from the shared
  :class:`~repro.engine.batch.BatchSolverEngine`;
* ``now`` — transmit from the contact distance ``d0`` (no flying, no
  survival discount);
* ``closest`` — ship all the way to the hop's distance floor.

A hop-greedy pick of ``optimal`` everywhere maximises each factor of
the chain utility separately but not their combination: the utility is
a *ratio* ``prod(discount) / sum(delay)``, so a cheap hop may trade
its own optimum for chain-level survival or for a delivery deadline.
The solver therefore runs a dynamic program over the exact Pareto
frontier of ``(survival product, delay sum)`` states — survival and
delay are each additive/multiplicative per hop, so any chain-level
objective that is monotone in both (the utility ratio, a deadline cut)
is maximised by some frontier state.

Bit-identity contracts (pinned by the property suite):

* a 1-hop chain with zero hand-off returns the engine's
  :class:`~repro.core.optimizer.OptimalDecision` fields verbatim —
  boundary candidates that coincide with the engine optimum are
  dropped rather than re-derived, and a non-snapped engine optimum
  strictly dominates both boundaries by the engine's own snap margin;
* the candidate evaluation is shared with
  :class:`~repro.relay.batch.BatchRelaySolver`, so scalar and batch
  paths stay in R=1 lockstep by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.optimizer import OptimalDecision
from ..engine.batch import BatchSolverEngine, default_engine
from ..obs import ObsContext, RunManifest
from .chain import RelayChain

__all__ = [
    "HOP_POLICIES",
    "HopChoice",
    "RelayDecision",
    "RelaySolver",
    "relay_manifest",
]

#: The candidate policies each hop chooses between, in tie-break order
#: (the engine optimum wins exact utility ties).
HOP_POLICIES = ("optimal", "now", "closest")

#: Cap on Pareto states kept per DP layer.  With three candidates per
#: hop the exact frontier stays tiny after dominance pruning; the cap
#: only bounds pathological hand-crafted chains, deterministically
#: (lowest-delay states are kept).
_MAX_FRONTIER = 256


@dataclass(frozen=True)
class HopChoice:
    """The policy one hop ends up with, plus its Eq. 1 breakdown."""

    hop: int
    policy: str
    distance_m: float
    utility: float
    cdelay_s: float
    shipping_s: float
    transmission_s: float
    discount: float
    handoff_s: float

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready mapping; floats round-trip exactly."""
        return {
            "hop": self.hop,
            "policy": self.policy,
            "distance_m": self.distance_m,
            "utility": self.utility,
            "cdelay_s": self.cdelay_s,
            "shipping_s": self.shipping_s,
            "transmission_s": self.transmission_s,
            "discount": self.discount,
            "handoff_s": self.handoff_s,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "HopChoice":
        """Inverse of :meth:`to_dict` (store rehydration)."""
        return cls(
            hop=int(payload["hop"]),
            policy=str(payload["policy"]),
            distance_m=float(payload["distance_m"]),
            utility=float(payload["utility"]),
            cdelay_s=float(payload["cdelay_s"]),
            shipping_s=float(payload["shipping_s"]),
            transmission_s=float(payload["transmission_s"]),
            discount=float(payload["discount"]),
            handoff_s=float(payload["handoff_s"]),
        )


@dataclass(frozen=True)
class RelayDecision:
    """The solved chain: per-hop choices plus chain-level aggregates."""

    chain: str
    hops: Tuple[HopChoice, ...]
    #: Chain utility: ``survival / delay_s`` (generalised Eq. 1).
    utility: float
    #: Product of the per-hop survival discounts.
    survival: float
    #: End-to-end delay: per-hop Cdelay plus hand-off overheads.
    delay_s: float
    #: Total hand-off overhead included in ``delay_s``.
    handoff_s: float
    deadline_s: Optional[float]
    #: True when ``delay_s`` meets the deadline (always True without
    #: one); False means no candidate combination was feasible and the
    #: minimum-delay chain is reported instead.
    meets_deadline: bool

    @property
    def n_hops(self) -> int:
        """Number of hops in the solved chain."""
        return len(self.hops)

    @property
    def policies(self) -> Tuple[str, ...]:
        """Per-hop policy names, in chain order."""
        return tuple(choice.policy for choice in self.hops)

    def to_dict(self) -> Dict[str, object]:
        """JSON document; identical across replays of the same chain."""
        return {
            "chain": self.chain,
            "utility": self.utility,
            "survival": self.survival,
            "delay_s": self.delay_s,
            "handoff_s": self.handoff_s,
            "deadline_s": self.deadline_s,
            "meets_deadline": self.meets_deadline,
            "hops": [choice.to_dict() for choice in self.hops],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "RelayDecision":
        """Inverse of :meth:`to_dict` — ``from_dict(d.to_dict()) == d``."""
        deadline = payload["deadline_s"]
        return cls(
            chain=str(payload["chain"]),
            hops=tuple(
                HopChoice.from_dict(choice) for choice in payload["hops"]
            ),
            utility=float(payload["utility"]),
            survival=float(payload["survival"]),
            delay_s=float(payload["delay_s"]),
            handoff_s=float(payload["handoff_s"]),
            deadline_s=None if deadline is None else float(deadline),
            meets_deadline=bool(payload["meets_deadline"]),
        )


# ----------------------------------------------------------------------
# Candidate evaluation (shared by the scalar and batch solvers)
# ----------------------------------------------------------------------

def _hop_candidates(
    engine: BatchSolverEngine,
    scenarios: Sequence,
    decisions: Sequence[OptimalDecision],
) -> List[List[Tuple[str, float, float, float, float, float, float]]]:
    """Per-hop candidate tuples: (policy, d, U, cdelay, ship, tx, disc).

    The ``optimal`` candidate copies the engine decision's fields
    verbatim; the boundary candidates are evaluated through the same
    elementwise :meth:`~repro.engine.batch.BatchSolverEngine.breakdown_at`
    arrays whether one hop or a whole fleet is being solved — this
    function is the single candidate source for both solvers, which is
    what makes scalar↔batch lockstep structural rather than tested-in.

    A boundary whose distance equals the engine optimum (a snapped
    decision) is dropped: re-deriving it through a different float path
    could differ in the last ulp and steal the tie.
    """
    d0 = np.array([s.contact_distance_m for s in scenarios], dtype=float)
    dmin = np.array([s.min_distance_m for s in scenarios], dtype=float)
    at_now = engine.breakdown_at(scenarios, d0)
    at_closest = engine.breakdown_at(scenarios, dmin)
    rows: List[List[Tuple[str, float, float, float, float, float, float]]] = []
    for i, decision in enumerate(decisions):
        row = [
            (
                "optimal",
                decision.distance_m,
                decision.utility,
                decision.cdelay_s,
                decision.shipping_s,
                decision.transmission_s,
                decision.discount,
            )
        ]
        if float(d0[i]) != decision.distance_m:
            row.append(
                ("now", float(d0[i]))
                + tuple(float(column[i]) for column in at_now)
            )
        if float(dmin[i]) != decision.distance_m:
            row.append(
                ("closest", float(dmin[i]))
                + tuple(float(column[i]) for column in at_closest)
            )
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# The dynamic program
# ----------------------------------------------------------------------

def _prune(
    states: List[Tuple[float, float, Tuple[int, ...]]],
) -> List[Tuple[float, float, Tuple[int, ...]]]:
    """Keep the Pareto frontier of (survival desc, delay asc) states.

    Sorting by (delay, -survival, path) makes the sweep deterministic:
    among states equal on both axes the lexicographically smallest
    candidate path survives, which orders ``optimal`` first.
    """
    states.sort(key=lambda s: (s[1], -s[0], s[2]))
    kept: List[Tuple[float, float, Tuple[int, ...]]] = []
    best_survival = -1.0
    for survival, delay, path in states:
        if survival > best_survival:
            kept.append((survival, delay, path))
            best_survival = survival
            if len(kept) >= _MAX_FRONTIER:
                break
    return kept


def _dp_select(
    rows: Sequence[Sequence[tuple]],
    handoffs: Sequence[float],
    deadline_s: Optional[float],
) -> Tuple[Tuple[int, ...], float, float, bool]:
    """Pick one candidate per hop maximising the chain utility.

    Returns ``(candidate indices, survival, delay_s, feasible)``.
    States fold multiplicatively in survival and additively in delay
    (candidate index 3 is cdelay, index 6 the discount), the frontier
    is pruned exactly per layer, and the final pick maximises
    ``survival / delay`` among deadline-feasible states — falling back
    to the minimum-delay chain when nothing is feasible.
    """
    frontier: List[Tuple[float, float, Tuple[int, ...]]] = [(1.0, 0.0, ())]
    for row, handoff in zip(rows, handoffs):
        grown = [
            (
                survival * candidate[6],
                delay + candidate[3] + handoff,
                path + (index,),
            )
            for survival, delay, path in frontier
            for index, candidate in enumerate(row)
        ]
        frontier = _prune(grown)
    if deadline_s is not None:
        feasible = [state for state in frontier if state[1] <= deadline_s]
    else:
        feasible = frontier
    if feasible:
        survival, delay, path = min(
            feasible, key=lambda s: (-(s[0] / s[1]), s[1], s[2])
        )
        return path, survival, delay, True
    survival, delay, path = min(
        frontier, key=lambda s: (s[1], -s[0], s[2])
    )
    return path, survival, delay, False


def _assemble(chain: RelayChain, rows: Sequence[Sequence[tuple]]) -> RelayDecision:
    """Run the DP and package the winning path as a decision."""
    handoffs = [hop.handoff_s for hop in chain.hops]
    path, survival, delay, feasible = _dp_select(
        rows, handoffs, chain.deadline_s
    )
    choices = tuple(
        HopChoice(
            hop=i,
            policy=rows[i][index][0],
            distance_m=rows[i][index][1],
            utility=rows[i][index][2],
            cdelay_s=rows[i][index][3],
            shipping_s=rows[i][index][4],
            transmission_s=rows[i][index][5],
            discount=rows[i][index][6],
            handoff_s=handoffs[i],
        )
        for i, index in enumerate(path)
    )
    return RelayDecision(
        chain=chain.name,
        hops=choices,
        utility=survival / delay,
        survival=survival,
        delay_s=delay,
        handoff_s=sum(handoffs),
        deadline_s=chain.deadline_s,
        meets_deadline=feasible,
    )


# ----------------------------------------------------------------------
# The scalar solver
# ----------------------------------------------------------------------

class RelaySolver:
    """Solves one relay chain at a time (the scalar reference path)."""

    def __init__(self, engine: Optional[BatchSolverEngine] = None) -> None:
        self.engine = engine or default_engine()

    def solve(
        self,
        chain: RelayChain,
        obs: Optional[ObsContext] = None,
    ) -> RelayDecision:
        """Solve the chain's per-hop now-vs-ship decisions.

        ``obs`` records a ``relay.solve`` span, ``relay.*`` counters
        and a ``decision.relay`` event; ``None`` (the default) leaves
        the solve path untouched.
        """
        if obs is None:
            return self._solve(chain)
        span = None
        if obs.tracer is not None:
            span = obs.tracer.span("relay.solve", hops=chain.n_hops)
            span.__enter__()
        try:
            decision = self._solve(chain)
        finally:
            if span is not None:
                span.__exit__(None, None, None)
        _record_relay_obs(obs, [decision])
        return decision

    def _solve(self, chain: RelayChain) -> RelayDecision:
        scenarios = chain.scenarios()
        decisions = [self.engine.solve(scn) for scn in scenarios]
        rows = _hop_candidates(self.engine, scenarios, decisions)
        return _assemble(chain, rows)


def _record_relay_obs(obs: ObsContext, decisions: Sequence[RelayDecision]) -> None:
    """``relay.*`` counters and one event per solved chain.

    Shared by the scalar and batch solvers so both emit the same metric
    names (the campaign-style parity contract).
    """
    if obs.metrics is not None:
        obs.metrics.counter("relay.chains").inc(len(decisions))
        obs.metrics.counter("relay.hops").inc(
            sum(decision.n_hops for decision in decisions)
        )
    if obs.events is not None:
        for decision in decisions:
            obs.events.emit(
                "decision.relay",
                0.0,
                chain=decision.chain,
                utility=decision.utility,
                delay_s=decision.delay_s,
                meets_deadline=decision.meets_deadline,
            )


def relay_manifest(
    decision: RelayDecision,
    chain: RelayChain,
    obs: Optional[ObsContext] = None,
    git_rev: Optional[str] = "auto",
) -> RunManifest:
    """The one manifest builder for relay solves.

    ``repro relay --json`` and :func:`repro.api.solve_relay` both
    serialise through this function, so CLI stdout and the library's
    :class:`~repro.obs.RunManifest` are byte-identical for the same
    chain — and, with the default deterministic obs context, a
    warm-cache run prints the same bytes as the cold run that
    populated the store.
    """
    return RunManifest.build(
        kind="relay",
        config=chain.to_dict(),
        outputs=decision.to_dict(),
        obs=obs,
        git_rev=git_rev,
    )
