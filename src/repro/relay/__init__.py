"""Multi-hop relay-chain workload: model, solvers, transfers, campaigns.

The paper's now-or-later decision generalised to chains of ferrying
UAVs (see ``docs/API.md``, "Relay chains"):

* :class:`RelayChain` / :class:`RelayHop` — the static chain model;
* :class:`RelaySolver` — per-hop now-vs-ship decisions via an exact
  Pareto-frontier dynamic program over Eq. 1/2;
* :class:`BatchRelaySolver` — the RL105-registered batch twin,
  bit-identical to the scalar path at R=1;
* :func:`run_relay_transfer` — fault-plan-compatible store-and-forward
  execution with checkpoint/resume at interrupted hops;
* :func:`run_relay_campaign` — replicated outage campaigns with
  worker-count-invariant results.
"""

from .batch import BatchRelayResult, BatchRelaySolver
from .chain import RelayChain, RelayHop
from .campaign import (
    RelayCampaignConfig,
    RelayCampaignResult,
    relay_campaign_manifest,
    run_relay_campaign,
)
from .solver import (
    HOP_POLICIES,
    HopChoice,
    RelayDecision,
    RelaySolver,
    relay_manifest,
)
from .transfer import (
    RelayHopReport,
    RelayTransferResult,
    run_relay_transfer,
)

__all__ = [
    "HOP_POLICIES",
    "BatchRelayResult",
    "BatchRelaySolver",
    "HopChoice",
    "RelayCampaignConfig",
    "RelayCampaignResult",
    "RelayChain",
    "RelayDecision",
    "RelayHop",
    "RelayHopReport",
    "RelaySolver",
    "RelayTransferResult",
    "relay_campaign_manifest",
    "relay_manifest",
    "run_relay_campaign",
    "run_relay_transfer",
]
