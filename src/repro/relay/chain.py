"""Relay-chain scenario model: N store-and-forward hops of Eq. 1/2.

The paper solves the now-or-later decision for a single sender/receiver
pair; its related work (UAV ferrying, DTN store-carry-forward) chains
that decision across several relaying UAVs.  A :class:`RelayChain` is
the static description of such a chain: an ordered tuple of
:class:`RelayHop` entries, each a full single-link
:class:`~repro.core.scenario.Scenario` (its own contact distance,
throughput law, failure rate and cruise speed) plus the hand-off
overhead paid before the hop starts (association, re-buffering,
turn-around).

The *same* ``Mdata`` flows through every hop — a relay must receive
the batch in full before forwarding it — so :meth:`RelayChain.of`
normalises every hop scenario to the chain's data size.  The chain
utility generalises Eq. 1:

    U_chain = prod_i exp(-rho_i * (d0_i - d_i)) /
              (sum_i [Cdelay_i(d_i) + handoff_i])

which :mod:`repro.relay.solver` maximises hop by hop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

from ..core.scenario import Scenario

__all__ = ["RelayHop", "RelayChain"]


@dataclass(frozen=True)
class RelayHop:
    """One hop of a relay chain: a single-link scenario plus hand-off.

    ``handoff_s`` is the overhead paid *before* this hop's clock
    starts (receiving the batch from the previous carrier, association,
    turn-around); the first hop of a chain conventionally carries 0.
    """

    scenario: Scenario
    handoff_s: float = 0.0

    def __post_init__(self) -> None:
        if self.handoff_s < 0:
            raise ValueError("handoff_s must be non-negative")

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready echo of this hop's parameters."""
        scn = self.scenario
        return {
            "scenario": scn.name,
            "mdata_mb": scn.data_megabytes,
            "speed_mps": scn.cruise_speed_mps,
            "rho_per_m": scn.failure_rate_per_m,
            "d0_m": scn.contact_distance_m,
            "dmin_m": scn.min_distance_m,
            "handoff_s": self.handoff_s,
        }


@dataclass(frozen=True)
class RelayChain:
    """An ordered chain of relay hops with an optional delivery deadline."""

    name: str
    hops: Tuple[RelayHop, ...]
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.hops:
            raise ValueError("a relay chain needs at least one hop")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive")

    # ------------------------------------------------------------------
    @classmethod
    def of(
        cls,
        scenarios: Sequence[Scenario],
        handoff_s: Union[float, Sequence[float]] = 0.0,
        name: str = "relay",
        deadline_s: Optional[float] = None,
        mdata_mb: Optional[float] = None,
    ) -> "RelayChain":
        """Build a chain from per-hop scenarios, normalising the data.

        The chain carries one batch end to end, so every hop scenario
        is rewritten to the chain's data size — ``mdata_mb`` when
        given, otherwise the first scenario's.  ``handoff_s`` may be a
        scalar (applied to every hop after the first) or a sequence of
        length N or N-1 (the first hop never pays a hand-off).
        """
        scenario_list = list(scenarios)
        if not scenario_list:
            raise ValueError("a relay chain needs at least one hop")
        if mdata_mb is not None:
            bits = float(mdata_mb) * 8e6
        else:
            bits = scenario_list[0].data_bits
        if isinstance(handoff_s, (int, float)):
            overheads = [0.0] + [float(handoff_s)] * (len(scenario_list) - 1)
        else:
            overheads = [float(h) for h in handoff_s]
            if len(overheads) == len(scenario_list) - 1:
                overheads = [0.0] + overheads
            if len(overheads) != len(scenario_list):
                raise ValueError(
                    "handoff_s sequence must have one entry per hop "
                    "(or per hand-off, i.e. hops - 1)"
                )
        hops = tuple(
            RelayHop(scenario=scn.with_(data_bits=bits), handoff_s=overhead)
            for scn, overhead in zip(scenario_list, overheads)
        )
        return cls(name=name, hops=hops, deadline_s=deadline_s)

    # ------------------------------------------------------------------
    @property
    def n_hops(self) -> int:
        """Number of hops in the chain."""
        return len(self.hops)

    @property
    def data_bits(self) -> float:
        """The batch size the chain carries (first hop's ``Mdata``)."""
        return self.hops[0].scenario.data_bits

    @property
    def total_handoff_s(self) -> float:
        """Total hand-off overhead along the chain."""
        return sum(hop.handoff_s for hop in self.hops)

    def scenarios(self) -> Tuple[Scenario, ...]:
        """The per-hop single-link scenarios, in chain order."""
        return tuple(hop.scenario for hop in self.hops)

    def cache_key(self) -> Optional[tuple]:
        """Hashable identity of the chain, or ``None`` if uncacheable.

        Built from each hop scenario's
        :meth:`~repro.core.scenario.Scenario.cache_key` (which covers
        the throughput law), the hand-off overheads and the deadline —
        the persistent result store hashes this via
        :func:`repro.store.config_key`.
        """
        parts = []
        for hop in self.hops:
            scenario_key = hop.scenario.cache_key()
            if scenario_key is None:
                return None
            parts.append((scenario_key, hop.handoff_s))
        return (tuple(parts), self.deadline_s)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready echo of the chain (manifest config)."""
        return {
            "chain": self.name,
            "n_hops": self.n_hops,
            "deadline_s": self.deadline_s,
            "hops": [hop.to_dict() for hop in self.hops],
        }
