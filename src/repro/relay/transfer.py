"""Store-and-forward relay transfers under deterministic fault plans.

:func:`run_relay_transfer` drives one solved
:class:`~repro.relay.chain.RelayChain` through the epoch-based link
engine, hop by hop: each carrier ships towards its solved distance
while transmitting, the next hop's batch carries exactly the bytes the
previous hop delivered (store-and-forward), and the hop's hand-off
overhead advances the global clock between legs.

Fault compatibility is the point: the fault plan's ``link_outage``
windows live on the *global* mission clock, so an outage landing at an
interior hop blacks out whichever link is active then.  Each hop runs
inside a :class:`~repro.mission.ferry.ResumableFerryTransfer`, so the
interrupted leg checkpoints and resumes on the same
:class:`~repro.net.packets.ImageBatch` — delivered bytes are conserved
exactly across blackout, checkpoint, resume and hand-off (the chaos
suite pins the full ledger).

Everything is deterministic: the same ``(chain, plan, seed)`` triple
yields a byte-identical :class:`RelayTransferResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..channel.channel import (
    AerialChannel,
    airplane_profile,
    quadrocopter_profile,
)
from ..faults.outage import OutageSchedule
from ..faults.plan import FaultPlan
from ..mission.ferry import ResumableFerryTransfer, TransferCheckpoint
from ..net.link import WirelessLink
from ..net.packets import ImageBatch
from ..net.retry import RetryPolicy
from ..obs import ObsContext
from ..phy.rate_control import scalar_controller
from ..sim.random import RandomStreams
from .chain import RelayChain
from .solver import RelayDecision, RelaySolver

__all__ = ["RelayHopReport", "RelayTransferResult", "run_relay_transfer"]

_PROFILES = {
    "airplane": airplane_profile,
    "quadrocopter": quadrocopter_profile,
}


@dataclass(frozen=True)
class RelayHopReport:
    """Ledger entry for one executed hop."""

    hop: int
    policy: str
    dopt_m: float
    start_s: float
    finish_s: float
    #: Bytes this hop carried (the previous hop's deliveries).
    carried_bytes: int
    #: Bytes this hop handed to the next carrier (or the ground).
    delivered_bytes: int
    completed: bool
    resumes: int
    blackout_retries: int

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready mapping (campaign manifests, CLI)."""
        return {
            "hop": self.hop,
            "policy": self.policy,
            "dopt_m": self.dopt_m,
            "start_s": self.start_s,
            "finish_s": self.finish_s,
            "carried_bytes": self.carried_bytes,
            "delivered_bytes": self.delivered_bytes,
            "completed": self.completed,
            "resumes": self.resumes,
            "blackout_retries": self.blackout_retries,
        }


@dataclass(frozen=True)
class RelayTransferResult:
    """Deterministic outcome of one relay transfer (JSON-ready)."""

    chain: str
    plan_name: str
    seed: int
    completed: bool
    finish_s: float
    #: Bytes that reached the final receiver.
    delivered_bytes: int
    total_bytes: int
    resumes: int
    hops: Tuple[RelayHopReport, ...]
    checkpoints: Tuple[TransferCheckpoint, ...] = field(default_factory=tuple)
    deadline_s: Optional[float] = None

    @property
    def delivered_fraction(self) -> float:
        """Fraction of ``Mdata`` that made it end to end."""
        if self.total_bytes <= 0:
            return 0.0
        return self.delivered_bytes / self.total_bytes

    def byte_ledger_consistent(self) -> bool:
        """Exact conservation: each hop forwards what it received.

        Every hop's carried bytes must equal the previous hop's
        delivered bytes, no hop may deliver more than it carried, and
        the first hop carries the full batch.
        """
        if not self.hops:
            return self.delivered_bytes == 0
        if self.hops[0].carried_bytes != self.total_bytes:
            return False
        for previous, current in zip(self.hops, self.hops[1:]):
            if current.carried_bytes != previous.delivered_bytes:
                return False
        return all(
            hop.delivered_bytes <= hop.carried_bytes for hop in self.hops
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON document; identical across replays of the same inputs."""
        return {
            "chain": self.chain,
            "plan": self.plan_name,
            "seed": self.seed,
            "completed": self.completed,
            "finish_s": self.finish_s,
            "deadline_s": self.deadline_s,
            "delivered_bytes": self.delivered_bytes,
            "total_bytes": self.total_bytes,
            "delivered_fraction": self.delivered_fraction,
            "resumes": self.resumes,
            "hops": [hop.to_dict() for hop in self.hops],
            "checkpoints": [c.to_dict() for c in self.checkpoints],
        }


def run_relay_transfer(
    chain: RelayChain,
    plan: FaultPlan,
    seed: int = 1,
    decision: Optional[RelayDecision] = None,
    epoch_s: float = 0.02,
    controller: str = "arf",
    retry: RetryPolicy = RetryPolicy(),
    idle_timeout_s: float = 2.0,
    max_resumes: int = 8,
    obs: Optional[ObsContext] = None,
) -> RelayTransferResult:
    """Execute one relay chain under a fault plan; fully deterministic.

    Each hop follows its solved policy (``decision`` defaults to a
    fresh :class:`~repro.relay.solver.RelaySolver` solve of the chain):
    from contact at its ``d0`` the carrier ships towards the chosen
    distance while the transfer engine runs, until its batch completes,
    the chain deadline passes, or the per-hop resume budget is
    exhausted.  Hop ``h+1`` starts after hop ``h``'s finish plus its
    hand-off overhead, carrying exactly the bytes hop ``h`` delivered.

    ``obs`` (a *deterministic* context — replays are byte-identical by
    contract) records per-hop ``relay.transfer`` events and counters.
    """
    for hop in chain.hops:
        if hop.scenario.name not in _PROFILES:
            raise ValueError(
                f"no channel profile for scenario {hop.scenario.name!r}; "
                f"choose hops from {sorted(_PROFILES)}"
            )
    if decision is None:
        decision = RelaySolver().solve(chain)
    deadline_s = chain.deadline_s
    events = obs.events if obs is not None else None

    total_bytes = int(round(chain.data_bits / 8))
    carried = total_bytes
    now = 0.0
    reports: List[RelayHopReport] = []
    checkpoints: List[TransferCheckpoint] = []
    total_resumes = 0
    chain_completed = False

    for index, (hop, choice) in enumerate(zip(chain.hops, decision.hops)):
        if carried <= 0:
            break
        now += hop.handoff_s
        if deadline_s is not None and now >= deadline_s:
            break
        if events is not None and hop.handoff_s > 0:
            events.emit(
                "relay.handoff", now, hop=index, carried_bytes=carried
            )
        scn = hop.scenario
        streams = RandomStreams(seed=seed).fork(index + 1)
        link = WirelessLink(
            AerialChannel(_PROFILES[scn.name](), streams),
            scalar_controller(controller),
            streams=streams,
            epoch_s=epoch_s,
            outage=OutageSchedule.from_plan(plan),
        )
        batch = ImageBatch(batch_id=index, total_bytes=carried)
        start_s = now
        floor_m = choice.distance_m
        speed = scn.cruise_speed_mps
        d_start = scn.contact_distance_m

        def distance_fn(
            t_s: float,
            floor_m: float = floor_m,
            d_start: float = d_start,
            speed: float = speed,
            start_s: float = start_s,
        ) -> float:
            return max(floor_m, d_start - speed * (t_s - start_s))

        transfer = ResumableFerryTransfer(
            link,
            batch,
            retry=retry,
            idle_timeout_s=idle_timeout_s,
            max_resumes=max_resumes,
        )
        report = transfer.run(start_s, distance_fn, deadline_s=deadline_s)
        now = report.finish_s
        total_resumes += report.resumes
        checkpoints.extend(report.checkpoints)
        reports.append(
            RelayHopReport(
                hop=index,
                policy=choice.policy,
                dopt_m=floor_m,
                start_s=start_s,
                finish_s=report.finish_s,
                carried_bytes=carried,
                delivered_bytes=report.delivered_bytes,
                completed=report.completed,
                resumes=report.resumes,
                blackout_retries=report.blackout_retries,
            )
        )
        if events is not None:
            events.emit(
                "relay.hop",
                now,
                hop=index,
                completed=report.completed,
                delivered_bytes=report.delivered_bytes,
                resumes=report.resumes,
            )
        carried = report.delivered_bytes
        if not report.completed:
            break
        if index == chain.n_hops - 1:
            chain_completed = True

    delivered = reports[-1].delivered_bytes if (
        reports and len(reports) == chain.n_hops
    ) else 0
    if obs is not None and obs.metrics is not None:
        obs.metrics.counter("relay.transfer.resumes").inc(total_resumes)
        obs.metrics.counter("relay.transfer.checkpoints").inc(
            len(checkpoints)
        )
        obs.metrics.counter("relay.transfer.hops").inc(len(reports))
        obs.metrics.gauge("relay.transfer.delivered_fraction").set(
            delivered / total_bytes if total_bytes else 0.0
        )
    return RelayTransferResult(
        chain=chain.name,
        plan_name=plan.name,
        seed=seed,
        completed=chain_completed,
        finish_s=now,
        delivered_bytes=delivered,
        total_bytes=total_bytes,
        resumes=total_resumes,
        hops=tuple(reports),
        checkpoints=tuple(checkpoints),
        deadline_s=deadline_s,
    )
