"""Vectorised relay-chain solver for fleets of chains.

:class:`BatchRelaySolver` is the RL105-registered batch twin of
:class:`~repro.relay.solver.RelaySolver`: at R=1 (one chain) it is
bit-identical to the scalar path, and over a fleet it amortises the
engine work by stacking every hop of every chain into shared
vectorised passes.

Bit-lockstep is structural, not tuned-in:

* hop scenarios are grouped by
  :meth:`~repro.engine.batch.BatchSolverEngine.grid_points` before the
  stacked :meth:`~repro.engine.batch.BatchSolverEngine.solve_batch`
  calls — the engine's scan grid is span-normalised per row, so rows
  sharing a grid-point count reproduce their solo grids exactly and
  every per-row operation (bisection, snapping, the SciPy fallback) is
  row-independent from there;
* boundary candidates come from the same elementwise
  :func:`~repro.relay.solver._hop_candidates` evaluation the scalar
  solver uses, and the DP itself is the shared
  :func:`~repro.relay.solver._assemble`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from ..engine.batch import BatchSolverEngine, default_engine
from ..obs import ObsContext
from .chain import RelayChain
from .solver import (
    RelayDecision,
    _assemble,
    _hop_candidates,
    _record_relay_obs,
)

__all__ = ["BatchRelayResult", "BatchRelaySolver"]


class BatchRelayResult:
    """Container of N solved chains with array-valued aggregates."""

    def __init__(self, decisions: Tuple[RelayDecision, ...]) -> None:
        self.decisions = decisions
        self.utility = np.array([d.utility for d in decisions])
        self.survival = np.array([d.survival for d in decisions])
        self.delay_s = np.array([d.delay_s for d in decisions])

    def __len__(self) -> int:
        return len(self.decisions)

    def __getitem__(self, index: int) -> RelayDecision:
        return self.decisions[index]

    def __iter__(self) -> Iterator[RelayDecision]:
        return iter(self.decisions)

    def to_dicts(self) -> List[dict]:
        """JSON-ready mapping per chain (CLI/manifest output)."""
        return [decision.to_dict() for decision in self.decisions]


class BatchRelaySolver:
    """Solves fleets of relay chains in shared vectorised passes."""

    def __init__(self, engine: Optional[BatchSolverEngine] = None) -> None:
        self.engine = engine or default_engine()

    def solve(
        self,
        chains: Iterable[RelayChain],
        obs: Optional[ObsContext] = None,
    ) -> BatchRelayResult:
        """Solve every chain; bit-identical to the scalar path per chain.

        ``obs`` records a ``relay.solve_batch`` span plus the same
        ``relay.*`` counters and ``decision.relay`` events the scalar
        solver emits; ``None`` leaves the hot path untouched.
        """
        chain_list = list(chains)
        if obs is None:
            return self._solve(chain_list)
        span = None
        if obs.tracer is not None:
            span = obs.tracer.span("relay.solve_batch", n=len(chain_list))
            span.__enter__()
        try:
            result = self._solve(chain_list)
        finally:
            if span is not None:
                span.__exit__(None, None, None)
        _record_relay_obs(obs, result.decisions)
        return result

    def _solve(self, chain_list: List[RelayChain]) -> BatchRelayResult:
        scenarios = [
            scn for chain in chain_list for scn in chain.scenarios()
        ]
        decisions = self._solve_hops(scenarios)
        rows = _hop_candidates(self.engine, scenarios, decisions)
        out: List[RelayDecision] = []
        offset = 0
        for chain in chain_list:
            out.append(_assemble(chain, rows[offset:offset + chain.n_hops]))
            offset += chain.n_hops
        return BatchRelayResult(tuple(out))

    def _solve_hops(self, scenarios: List) -> List:
        """Engine decisions per hop, grouped for solo-grid lockstep."""
        groups: Dict[int, List[int]] = {}
        for i, scenario in enumerate(scenarios):
            groups.setdefault(
                self.engine.grid_points(scenario), []
            ).append(i)
        decisions = [None] * len(scenarios)
        for count in sorted(groups):
            indices = groups[count]
            solved = self.engine.solve_batch(
                [scenarios[i] for i in indices]
            )
            for i, decision in zip(indices, solved):
                decisions[i] = decision
        return decisions
