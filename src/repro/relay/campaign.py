"""Relay transfer campaigns: replicated fault-plan runs, sharded.

:func:`run_relay_campaign` replays one relay chain under many
independently sampled outage plans — the relay analogue of
:func:`repro.measurements.batch.run_campaign` — and shards the
replicas onto the persistent :mod:`repro.exec` process pool.  The two
invariance rules that make campaigns reproducible carry over verbatim:

* every replica's fault plan is keyed to its **global** replica index
  (never to the shard that happens to execute it), so the sampled
  outages are independent of worker count and pool completion order;
* each shard fills a *deterministic* obs context and the parent merges
  them in shard order, so the merged observability — and therefore the
  campaign manifest — is byte-identical for 1 worker or 8.

When the pool cannot be started (restricted environments) the backend
degrades to the sequential path and still returns full results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..exec import backend_for
from ..faults.plan import FaultPlan
from ..obs import ObsContext, RunManifest
from ..sim.random import RandomStreams
from .chain import RelayChain
from .solver import RelayDecision, RelaySolver
from .transfer import RelayTransferResult, run_relay_transfer

__all__ = [
    "RelayCampaignConfig",
    "RelayCampaignResult",
    "relay_campaign_manifest",
    "run_relay_campaign",
]


@dataclass(frozen=True)
class RelayCampaignConfig:
    """Picklable description of one relay campaign.

    Hops are named baseline scenarios (the worker rebuilds the chain
    from names — no object references cross the process boundary).
    """

    scenarios: Tuple[str, ...] = ("quadrocopter", "airplane")
    handoff_s: float = 5.0
    mdata_mb: Optional[float] = None
    deadline_s: Optional[float] = None
    n_replicas: int = 8
    seed: int = 1
    epoch_s: float = 0.02
    controller: str = "arf"
    idle_timeout_s: float = 2.0
    max_resumes: int = 8
    #: Poisson arrival rate of injected link outages per replica
    #: (0 = fault-free).
    outage_rate_per_s: float = 0.0
    #: Mean duration of each injected outage (exponential).
    outage_mean_duration_s: float = 0.0
    #: Horizon the outage plans are sampled over.
    horizon_s: float = 600.0
    #: Replicas per process-pool task.
    block_size: int = 4

    def __post_init__(self) -> None:
        if not self.scenarios:
            raise ValueError("scenarios must not be empty")
        if self.n_replicas < 1:
            raise ValueError("n_replicas must be >= 1")
        if self.block_size < 1:
            raise ValueError("block_size must be >= 1")
        if self.outage_rate_per_s < 0:
            raise ValueError("outage_rate_per_s must be non-negative")
        if self.outage_rate_per_s > 0 and self.outage_mean_duration_s <= 0:
            raise ValueError(
                "outage_mean_duration_s must be positive when outages are on"
            )

    def chain(self) -> RelayChain:
        """The campaign's relay chain, rebuilt from scenario names."""
        from ..core.scenario import airplane_scenario, quadrocopter_scenario

        factories = {
            "airplane": airplane_scenario,
            "quadrocopter": quadrocopter_scenario,
        }
        hops = []
        for name in self.scenarios:
            try:
                hops.append(factories[name]())
            except KeyError:
                raise ValueError(
                    f"unknown scenario {name!r}; choose from "
                    f"{sorted(factories)}"
                ) from None
        return RelayChain.of(
            hops,
            handoff_s=self.handoff_s,
            name="-".join(self.scenarios),
            deadline_s=self.deadline_s,
            mdata_mb=self.mdata_mb,
        )

    def shards(self) -> List[Tuple[int, Tuple[int, ...]]]:
        """(shard index, global replica indices) task list."""
        replicas = list(range(self.n_replicas))
        return [
            (shard, tuple(replicas[start:start + self.block_size]))
            for shard, start in enumerate(
                range(0, self.n_replicas, self.block_size)
            )
        ]


@dataclass
class RelayCampaignResult:
    """Per-replica transfer outcomes, merged in global replica order."""

    replicas: Tuple[RelayTransferResult, ...]
    decision: RelayDecision

    @property
    def n_replicas(self) -> int:
        """Number of replicas run."""
        return len(self.replicas)

    @property
    def completed(self) -> int:
        """Replicas that delivered the full batch."""
        return sum(1 for r in self.replicas if r.completed)

    @property
    def total_resumes(self) -> int:
        """Checkpoint/resume cycles across all replicas."""
        return sum(r.resumes for r in self.replicas)

    def to_dict(self) -> Dict[str, object]:
        """JSON document; identical for any worker count."""
        return {
            "n_replicas": self.n_replicas,
            "completed": self.completed,
            "total_resumes": self.total_resumes,
            "decision": self.decision.to_dict(),
            "replicas": [r.to_dict() for r in self.replicas],
        }


# ----------------------------------------------------------------------
# Workers
# ----------------------------------------------------------------------

def _replica_fault_plan(config: RelayCampaignConfig, g: int) -> FaultPlan:
    """The outage plan of *global* replica ``g`` — pool-layout free.

    Keyed to the replica's global index exactly like the measurement
    campaigns: the same config yields bit-identical plans for any
    worker count or block size.
    """
    rng = RandomStreams(config.seed).fork(g + 1).get("faults.outage")
    return FaultPlan.sampled_outages(
        rng,
        horizon_s=config.horizon_s,
        rate_per_s=config.outage_rate_per_s,
        mean_duration_s=config.outage_mean_duration_s,
        name=f"replica{g}",
        seed=config.seed,
    )


def _shard_obs(
    shard: int, results: List[RelayTransferResult]
) -> ObsContext:
    """Deterministic obs context describing one shard's work."""
    obs = ObsContext.enabled(deterministic=True)
    end_s = max((r.finish_s for r in results), default=0.0)
    with obs.tracer.span(
        "relay.shard", sim_start_s=0.0, shard=shard
    ) as handle:
        handle.end_sim(end_s)
    obs.metrics.counter("relay.campaign.replicas").inc(len(results))
    obs.metrics.counter("relay.campaign.completed").inc(
        sum(1 for r in results if r.completed)
    )
    obs.metrics.counter("relay.campaign.resumes").inc(
        sum(r.resumes for r in results)
    )
    return obs


def _run_shard_task(
    args: Tuple,
) -> Tuple[List[RelayTransferResult], Optional[ObsContext]]:
    """One pool task: a block of replicas, sequentially."""
    config, shard, replicas, collect_obs = args
    chain = config.chain()
    decision = RelaySolver().solve(chain)
    results = [
        run_relay_transfer(
            chain,
            _replica_fault_plan(config, g),
            seed=config.seed + g,
            decision=decision,
            epoch_s=config.epoch_s,
            controller=config.controller,
            idle_timeout_s=config.idle_timeout_s,
            max_resumes=config.max_resumes,
        )
        for g in replicas
    ]
    obs = _shard_obs(shard, results) if collect_obs else None
    return results, obs


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------

def run_relay_campaign(
    config: RelayCampaignConfig,
    parallel: Optional[bool] = None,
    max_workers: Optional[int] = None,
    obs: Optional[ObsContext] = None,
) -> RelayCampaignResult:
    """Run the relay campaign; worker-count invariant by construction.

    Shards run on the persistent :mod:`repro.exec` backend:
    ``parallel=None`` auto-enables the process pool when there are
    several shards and more than one worker; ``True``/``False`` force
    it; ``max_workers`` pins the pool width.  ``obs`` collects
    per-shard spans and ``relay.campaign.*`` metrics, merged in shard
    order regardless of completion order.
    """
    shards = config.shards()
    collect = obs is not None
    run_span = None
    if obs is not None and obs.tracer is not None:
        run_span = obs.tracer.span("relay.campaign", sim_start_s=0.0)
        run_span.__enter__()
    tasks = [
        (config, shard, replicas, collect) for shard, replicas in shards
    ]
    try:
        outputs = backend_for(max_workers).map(
            _run_shard_task,
            tasks,
            parallel=parallel,
            family="relay.shard",
        )
    finally:
        if run_span is not None:
            run_span.annotate(shards=len(shards))
            run_span.__exit__(None, None, None)
    replicas = tuple(
        result for results, _ in outputs for result in results
    )
    if obs is not None:
        obs.merge(ObsContext.merged(part for _, part in outputs))
    chain = config.chain()
    return RelayCampaignResult(
        replicas=replicas,
        decision=RelaySolver().solve(chain),
    )


def relay_campaign_manifest(
    result: RelayCampaignResult,
    config: RelayCampaignConfig,
    obs: Optional[ObsContext] = None,
    git_rev: Optional[str] = "auto",
) -> RunManifest:
    """The one manifest builder for relay campaigns.

    With a deterministic ``obs`` the document is byte-identical for
    any worker count — the invariance contract the chaos suite pins
    with a 1-vs-4-worker comparison.
    """
    import dataclasses

    return RunManifest.build(
        kind="relay_campaign",
        config=dataclasses.asdict(config),
        seeds={"relay_campaign": config.seed},
        outputs=result.to_dict(),
        obs=obs,
        git_rev=git_rev,
    )
