"""The persistent, content-addressed, size-capped result store.

Layout (under ``REPRO_CACHE_DIR``, default ``~/.cache/repro``)::

    index.json             LRU index: {key: {size, tick}}, logical clock
    lock                   advisory flock for index mutations
    objects/ab/abcd....json one entry; {"key", "sha256", "body"}

Guarantees:

* **atomicity** — payloads and the index are written tmp+rename
  (:mod:`repro.store.atomic`), so readers never see torn entries;
* **self-verification** — every entry carries the SHA-256 of its
  canonical body; a mismatch (bit rot, partial disk, manual edits) is
  treated as a miss, the entry is dropped, and ``corrupt`` is counted —
  never an exception;
* **bounded size** — a byte-capped LRU: the index orders entries by a
  persisted logical ``tick`` (no wall clock anywhere, so replays and
  tests stay deterministic) and :meth:`ResultStore.put` evicts
  oldest-first past the cap;
* **graceful degradation** — a read-only, missing, or otherwise broken
  cache directory turns every operation into a counted no-op/miss; the
  caller recomputes and the run still succeeds.

Concurrency: index mutations take an advisory inter-process
:class:`~repro.store.atomic.FileLock` plus an in-process mutex; entry
reads are lock-free (rename atomicity makes any visible file whole).
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import threading
from pathlib import Path
from typing import Dict, Optional

from .atomic import FileLock, atomic_write_text
from .fingerprint import canonical_json

__all__ = [
    "DEFAULT_MAX_BYTES",
    "ResultStore",
    "cache_enabled_by_env",
    "default_cache_dir",
    "default_store",
    "resolve_store",
]

#: Default size cap (bytes) unless ``REPRO_CACHE_MAX_BYTES`` overrides.
DEFAULT_MAX_BYTES = 512 * 2**20

_INDEX_VERSION = 1


def default_cache_dir() -> Path:
    """``REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


def cache_enabled_by_env() -> bool:
    """Whether the persistent store is opted in for this process.

    The store is **opt-in**: set ``REPRO_CACHE_DIR`` (explicit
    location) or ``REPRO_CACHE=1`` (default location) to enable it;
    ``REPRO_NO_CACHE=1`` wins over both.  Library callers can always
    pass a :class:`ResultStore` (or ``cache=True``) explicitly.
    """
    if os.environ.get("REPRO_NO_CACHE"):
        return False
    return bool(
        os.environ.get("REPRO_CACHE_DIR") or os.environ.get("REPRO_CACHE")
    )


class ResultStore:
    """Content-addressed JSON store with checksums and LRU eviction."""

    def __init__(
        self,
        root: Optional[Path] = None,
        max_bytes: Optional[int] = None,
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        if max_bytes is None:
            try:
                max_bytes = int(
                    os.environ.get("REPRO_CACHE_MAX_BYTES", DEFAULT_MAX_BYTES)
                )
            except ValueError:
                max_bytes = DEFAULT_MAX_BYTES
        self.max_bytes = max_bytes
        #: Per-instance operation counters (``store.*`` obs names).
        self.counters: Dict[str, int] = {
            "hits": 0,
            "misses": 0,
            "puts": 0,
            "evictions": 0,
            "corrupt": 0,
            "errors": 0,
            "bytes_read": 0,
            "bytes_written": 0,
        }
        self._mutex = threading.Lock()
        self._broken = False

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    @property
    def index_path(self) -> Path:
        return self.root / "index.json"

    @property
    def lock_path(self) -> Path:
        return self.root / "lock"

    def _object_path(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    # Counters
    # ------------------------------------------------------------------
    def _count(self, name: str, n: int = 1) -> None:
        with self._mutex:
            self.counters[name] = self.counters.get(name, 0) + n

    def snapshot_counters(self) -> Dict[str, int]:
        """A copy of the operation counters (for obs deltas)."""
        with self._mutex:
            return dict(self.counters)

    # ------------------------------------------------------------------
    # Index
    # ------------------------------------------------------------------
    def _empty_index(self) -> Dict[str, object]:
        return {"version": _INDEX_VERSION, "tick": 0, "entries": {}}

    def _load_index(self) -> Dict[str, object]:
        """The on-disk index, rebuilt from the objects tree if damaged."""
        try:
            with open(self.index_path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if (
                isinstance(payload, dict)
                and payload.get("version") == _INDEX_VERSION
                and isinstance(payload.get("entries"), dict)
            ):
                return payload
        except FileNotFoundError:
            pass
        except (OSError, json.JSONDecodeError, ValueError):
            self._count("corrupt")
        return self._rebuild_index()

    def _rebuild_index(self) -> Dict[str, object]:
        """Recover an index by scanning ``objects/`` (sorted, tick 0)."""
        index = self._empty_index()
        entries: Dict[str, Dict[str, int]] = index["entries"]  # type: ignore[assignment]
        objects = self.root / "objects"
        try:
            for path in sorted(objects.rglob("*.json")):
                entries[path.stem] = {"size": path.stat().st_size, "tick": 0}
        except OSError:
            self._count("errors")
        return index

    def _save_index(self, index: Dict[str, object]) -> None:
        atomic_write_text(self.index_path, canonical_json(index) + "\n")

    def _ensure_dirs(self) -> bool:
        if self._broken:
            return False
        try:
            (self.root / "objects").mkdir(parents=True, exist_ok=True)
            return True
        except OSError:
            self._broken = True
            self._count("errors")
            return False

    # ------------------------------------------------------------------
    # Entry I/O
    # ------------------------------------------------------------------
    @staticmethod
    def _checksum(body: object) -> str:
        return hashlib.sha256(canonical_json(body).encode("utf-8")).hexdigest()

    def get(self, key: str, touch: bool = True) -> Optional[dict]:
        """The stored body for ``key``, or ``None``.

        Corrupt entries (bad JSON, checksum mismatch, key mismatch) are
        dropped and counted as ``corrupt`` — the caller simply sees a
        miss.  Filesystem errors count as ``errors`` and also miss.
        ``touch=False`` skips the LRU-tick refresh so batch readers can
        coalesce it into one :meth:`touch_many` index write.
        """
        path = self._object_path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                raw = handle.read()
        except FileNotFoundError:
            self._count("misses")
            return None
        except OSError:
            self._count("errors")
            self._count("misses")
            return None
        try:
            payload = json.loads(raw)
            body = payload["body"]
            ok = (
                payload.get("key") == key
                and payload.get("sha256") == self._checksum(body)
            )
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            ok = False
            body = None
        if not ok:
            self._count("corrupt")
            self._count("misses")
            self._drop(key)
            return None
        self._count("hits")
        self._count("bytes_read", len(raw))
        if touch:
            self.touch_many([key])
        return body

    def put(self, key: str, body: dict) -> bool:
        """Store ``body`` under ``key``; evict past the size cap.

        Returns ``True`` when the entry landed on disk.  Any failure
        (read-only directory, full disk, un-encodable body) is counted
        and swallowed — persistence is an optimisation, never a
        correctness dependency.
        """
        if self.max_bytes <= 0 or not self._ensure_dirs():
            return False
        try:
            document = canonical_json(
                {"key": key, "sha256": self._checksum(body), "body": body}
            )
        except (TypeError, ValueError):
            self._count("errors")
            return False
        path = self._object_path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            atomic_write_text(path, document)
        except OSError:
            self._count("errors")
            return False
        self._count("puts")
        self._count("bytes_written", len(document))
        try:
            with FileLock(self.lock_path):
                index = self._load_index()
                entries: Dict[str, Dict[str, int]] = index["entries"]  # type: ignore[assignment]
                tick = int(index.get("tick", 0)) + 1
                index["tick"] = tick
                entries[key] = {"size": len(document), "tick": tick}
                self._evict_locked(index)
                self._save_index(index)
        except OSError:
            self._count("errors")
        return True

    def put_many(self, items: Dict[str, dict]) -> int:
        """Store several bodies with one index update; returns stores.

        Payload files are written (atomically) one by one, then a
        single locked index pass assigns ticks in insertion order and
        runs eviction once — a cold 8k-point sweep costs one index
        write, not one per group.
        """
        if self.max_bytes <= 0 or not items or not self._ensure_dirs():
            return 0
        written: Dict[str, int] = {}
        for key, body in items.items():
            try:
                document = canonical_json(
                    {"key": key, "sha256": self._checksum(body), "body": body}
                )
            except (TypeError, ValueError):
                self._count("errors")
                continue
            path = self._object_path(key)
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                atomic_write_text(path, document)
            except OSError:
                self._count("errors")
                continue
            written[key] = len(document)
            self._count("puts")
            self._count("bytes_written", len(document))
        if not written:
            return 0
        try:
            with FileLock(self.lock_path):
                index = self._load_index()
                entries: Dict[str, Dict[str, int]] = index["entries"]  # type: ignore[assignment]
                tick = int(index.get("tick", 0))
                for key, size in written.items():
                    tick += 1
                    entries[key] = {"size": size, "tick": tick}
                index["tick"] = tick
                self._evict_locked(index)
                self._save_index(index)
        except OSError:
            self._count("errors")
        return len(written)

    def touch_many(self, keys) -> None:
        """Refresh the LRU tick of several keys in one index write."""
        keys = [key for key in keys if key]
        if not keys:
            return
        try:
            with FileLock(self.lock_path):
                index = self._load_index()
                entries: Dict[str, Dict[str, int]] = index["entries"]  # type: ignore[assignment]
                tick = int(index.get("tick", 0))
                dirty = False
                for key in keys:
                    if key in entries:
                        tick += 1
                        entries[key]["tick"] = tick
                        dirty = True
                if dirty:
                    index["tick"] = tick
                    self._save_index(index)
        except OSError:
            self._count("errors")

    def _drop(self, key: str) -> None:
        """Remove one entry's file and index row (best-effort)."""
        try:
            os.unlink(self._object_path(key))
        except OSError:
            pass
        try:
            with FileLock(self.lock_path):
                index = self._load_index()
                if key in index["entries"]:  # type: ignore[operator]
                    del index["entries"][key]  # type: ignore[index]
                    self._save_index(index)
        except OSError:
            self._count("errors")

    def _evict_locked(self, index: Dict[str, object]) -> int:
        """Evict oldest-tick entries until under the cap (lock held)."""
        entries: Dict[str, Dict[str, int]] = index["entries"]  # type: ignore[assignment]
        total = sum(int(e.get("size", 0)) for e in entries.values())
        evicted = 0
        while total > self.max_bytes and entries:
            victim = min(
                entries, key=lambda k: (int(entries[k].get("tick", 0)), k)
            )
            total -= int(entries[victim].get("size", 0))
            del entries[victim]
            try:
                os.unlink(self._object_path(victim))
            except OSError:
                pass
            evicted += 1
        if evicted:
            self._count("evictions", evicted)
        return evicted

    # ------------------------------------------------------------------
    # Maintenance (the ``repro cache`` CLI)
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Entry count, byte totals, cap and location (JSON-ready)."""
        index = self._load_index()
        entries: Dict[str, Dict[str, int]] = index["entries"]  # type: ignore[assignment]
        return {
            "path": str(self.root),
            "entries": len(entries),
            "total_bytes": sum(int(e.get("size", 0)) for e in entries.values()),
            "max_bytes": self.max_bytes,
            "counters": self.snapshot_counters(),
        }

    def gc(self, max_bytes: Optional[int] = None) -> int:
        """Enforce the size cap now; returns the number evicted."""
        cap = self.max_bytes if max_bytes is None else max_bytes
        try:
            with FileLock(self.lock_path):
                index = self._load_index()
                keep, self.max_bytes = self.max_bytes, cap
                try:
                    evicted = self._evict_locked(index)
                finally:
                    self.max_bytes = keep
                self._save_index(index)
            return evicted
        except OSError:
            self._count("errors")
            return 0

    def clear(self) -> int:
        """Drop every entry; returns the number removed."""
        index = self._load_index()
        removed = len(index["entries"])  # type: ignore[arg-type]
        try:
            shutil.rmtree(self.root / "objects", ignore_errors=True)
            with FileLock(self.lock_path):
                self._save_index(self._empty_index())
        except OSError:
            self._count("errors")
            return 0
        return removed

    def verify(self, repair: bool = True) -> Dict[str, int]:
        """Checksum every entry; drop (or just report) corrupt ones."""
        checked = corrupt = 0
        objects = self.root / "objects"
        try:
            paths = sorted(objects.rglob("*.json"))
        except OSError:
            self._count("errors")
            paths = []
        for path in paths:
            checked += 1
            key = path.stem
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
                ok = (
                    payload.get("key") == key
                    and payload.get("sha256")
                    == self._checksum(payload["body"])
                )
            except (OSError, json.JSONDecodeError, KeyError, TypeError,
                    ValueError):
                ok = False
            if not ok:
                corrupt += 1
                self._count("corrupt")
                if repair:
                    self._drop(key)
        return {"checked": checked, "corrupt": corrupt}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ResultStore({str(self.root)!r}, max_bytes={self.max_bytes})"


_DEFAULT_STORES: Dict[str, ResultStore] = {}


def resolve_store(cache) -> Optional[ResultStore]:
    """Map the public ``cache=`` knob onto a store instance (or None).

    ``False`` → never; a :class:`ResultStore` → itself; ``True`` → the
    default store; ``None`` (the default) → the default store only when
    the environment opted in (:func:`cache_enabled_by_env`).
    """
    if cache is False or (cache is None and not cache_enabled_by_env()):
        return None
    if isinstance(cache, ResultStore):
        return cache
    return default_store()


def default_store() -> ResultStore:
    """The process-wide store for the current cache directory.

    One instance per resolved directory, so tests that repoint
    ``REPRO_CACHE_DIR`` get a fresh store while normal processes share
    counters across the run.
    """
    root = str(default_cache_dir())
    store = _DEFAULT_STORES.get(root)
    if store is None:
        store = ResultStore(Path(root))
        _DEFAULT_STORES[root] = store
    return store
