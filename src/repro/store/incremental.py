"""Incremental Eq. 2 execution on top of the persistent result store.

The flow mirrors the batch engine's in-memory memoisation, one level
up and durable across processes: requested points are partitioned into
*cached* and *missing* groups, only the missing ones are dispatched to
the engine (in a single ``solve_batch`` call, so a fully cold run
executes exactly the code path an uncached run would), and results are
merged back in request order.

Granularity
-----------
Entries hold *groups* of solved points, not single points: a warm
re-run of an 8k-point sweep must cost a handful of file reads, not 8k.
Small batches (``<= _POINT_GROUP_LIMIT`` points) use groups of one so
planner-style workloads get true point-level reuse; large batches use
groups of ``engine.chunk_size``, aligned with the engine's own
chunking.  Decision columns are stored as base64-encoded little-endian
float64 — exact round-trip, no JSON float parsing on the warm path.

Keys
----
``(code fingerprint of the solver modules, store schema version,
engine settings, the points' full parameter tuples)`` — see
:mod:`repro.store.fingerprint`.  Sweep groups hash the base scenario's
tuple plus the swept field and the raw value block (``tobytes()``), so
key computation for a dense sweep costs microseconds per group instead
of a JSON encode per point — and a full-warm sweep never constructs
the variant scenarios at all.

Identity contract
-----------------
A fully-warm run returns bit-identical results to the cold run that
populated the store (pinned by golden tests and the ``cache-smoke`` CI
job).  Partially-warm runs re-solve only the missing points; those are
then batched in a different chunk composition than an all-cold run,
which carries the same tolerance-level caveat the in-memory memo
already has (see docs/PERFORMANCE.md).
"""

from __future__ import annotations

import base64
from contextlib import nullcontext
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

import numpy as np

from .fingerprint import SOLVER_CODE_MODULES, config_key
from .store import ResultStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.optimizer import OptimalDecision
    from ..core.scenario import Scenario
    from ..engine.batch import BatchResult, BatchSolverEngine
    from ..obs import ObsContext

__all__ = [
    "StoreReport",
    "record_store_metrics",
    "solve_batch_incremental",
    "solve_incremental",
    "sweep_incremental",
]

#: Batches up to this size use one store entry per point (maximum
#: reuse); larger batches use one entry per engine chunk (fast warm
#: reads for dense sweeps).
_POINT_GROUP_LIMIT = 256

#: BatchResult column names, in storage order.
_COLUMNS = (
    "distance_m",
    "utility",
    "cdelay_s",
    "shipping_s",
    "transmission_s",
    "discount",
    "contact_distance_m",
    "speed_mps",
    "data_bits",
)

#: Scenario fields whose value shapes the Eq. 2 solution; sweeps over
#: anything else fall back to the generic per-variant path.
_SWEEPABLE_FIELDS = {
    "data_bits_override",
    "cruise_speed_mps",
    "failure_rate_per_m",
    "contact_distance_m",
    "min_distance_m",
}


@dataclass(frozen=True)
class StoreReport:
    """How one request split across the store and the engine."""

    enabled: bool
    points: int = 0
    warm_points: int = 0
    entry_hits: int = 0
    entry_misses: int = 0

    @property
    def cold_points(self) -> int:
        """Points that had to be dispatched to the engine."""
        return self.points - self.warm_points


def _maybe_span(obs: Optional["ObsContext"], name: str, **attrs):
    if obs is not None and obs.tracer is not None:
        return obs.tracer.span(name, **attrs)
    return nullcontext()


def record_store_metrics(
    obs: Optional["ObsContext"],
    store: ResultStore,
    before: Dict[str, int],
    report: Optional[StoreReport] = None,
) -> None:
    """Fold the store-counter deltas since ``before`` into ``obs``.

    Emits ``store.hits`` / ``store.misses`` / ``store.evictions`` /
    ``store.corrupt`` / ``store.errors`` / ``store.bytes_read`` /
    ``store.bytes_written`` counters, plus point-level provenance
    (``store.points.warm`` / ``store.points.cold``) when a
    :class:`StoreReport` is given — this is what lands in the run's
    :class:`~repro.obs.RunManifest` metrics section.
    """
    if obs is None or obs.metrics is None:
        return
    after = store.snapshot_counters()
    for name, value in sorted(after.items()):
        delta = value - before.get(name, 0)
        if delta:
            obs.metrics.counter(f"store.{name}").inc(delta)
    if report is not None and report.enabled:
        if report.warm_points:
            obs.metrics.counter("store.points.warm").inc(report.warm_points)
        if report.cold_points:
            obs.metrics.counter("store.points.cold").inc(report.cold_points)


# ----------------------------------------------------------------------
# Column codecs
# ----------------------------------------------------------------------

def _encode_column(values: np.ndarray) -> str:
    return base64.b64encode(
        np.ascontiguousarray(values, dtype="<f8").tobytes()
    ).decode("ascii")


def _decode_column(data: str, n: int) -> np.ndarray:
    values = np.frombuffer(base64.b64decode(data), dtype="<f8")
    if values.shape[0] != n:
        raise ValueError("column length mismatch")
    return values


def _group_body(result: "BatchResult", start: int, stop: int) -> dict:
    return {
        "n": stop - start,
        "tolerance_m": float(result.tolerance_m),
        "columns": {
            name: _encode_column(getattr(result, name)[start:stop])
            for name in _COLUMNS
        },
    }


def _decode_group(body: dict) -> Optional[Tuple[Dict[str, np.ndarray], float]]:
    """Columns + tolerance from one entry body, or ``None`` if malformed."""
    try:
        n = int(body["n"])
        tolerance = float(body["tolerance_m"])
        columns = {
            name: _decode_column(body["columns"][name], n)
            for name in _COLUMNS
        }
    except (KeyError, TypeError, ValueError):
        return None
    return columns, tolerance


# ----------------------------------------------------------------------
# Key builders
# ----------------------------------------------------------------------

def _engine_settings(engine: "BatchSolverEngine") -> List[float]:
    # chunk_size participates because it shapes how missing points are
    # grouped into vectorised solves (grid resolution is shared per
    # chunk, so compositions are part of the result's identity).
    return [engine.grid_step_m, engine.refine_tolerance_m, engine.chunk_size]


def _group_key(
    engine: "BatchSolverEngine", point_keys: List[tuple]
) -> str:
    return config_key(
        "eq2.group",
        {"engine": _engine_settings(engine), "points": point_keys},
        SOLVER_CODE_MODULES,
    )


def _sweep_group_key(
    engine: "BatchSolverEngine",
    base_key: tuple,
    field: str,
    values: np.ndarray,
) -> str:
    return config_key(
        "eq2.sweep",
        {
            "engine": _engine_settings(engine),
            "base": base_key,
            "field": field,
            "n": int(values.shape[0]),
        },
        SOLVER_CODE_MODULES,
        extra_bytes=np.ascontiguousarray(values, dtype="<f8").tobytes(),
    )


# ----------------------------------------------------------------------
# Merging machinery shared by the batch and sweep paths
# ----------------------------------------------------------------------

def _assemble(
    n: int,
    groups: List[Tuple[int, int]],
    decoded: List[Optional[Tuple[Dict[str, np.ndarray], float]]],
    solved: Optional["BatchResult"],
    missing: List[int],
) -> "BatchResult":
    """Merge cached groups and freshly solved groups in request order."""
    from ..engine.batch import BatchResult

    columns = {name: np.empty(n, dtype=float) for name in _COLUMNS}
    tolerance = 1e-6
    cursor = 0
    for gi, (start, stop) in enumerate(groups):
        if decoded[gi] is not None:
            cached_columns, cached_tol = decoded[gi]
            for name in _COLUMNS:
                columns[name][start:stop] = cached_columns[name]
            tolerance = max(tolerance, cached_tol)
    if solved is not None:
        tolerance = max(tolerance, solved.tolerance_m)
        for gi in missing:
            start, stop = groups[gi]
            width = stop - start
            for name in _COLUMNS:
                columns[name][start:stop] = getattr(solved, name)[
                    cursor:cursor + width
                ]
            cursor += width
    return BatchResult(tolerance_m=tolerance, **columns)


def _fetch_groups(
    store: ResultStore,
    keys: List[str],
    refresh: bool,
    obs: Optional["ObsContext"],
) -> List[Optional[Tuple[Dict[str, np.ndarray], float]]]:
    """Decode every cached group (None = miss), batching LRU touches."""
    decoded: List[Optional[Tuple[Dict[str, np.ndarray], float]]] = []
    touched: List[str] = []
    with _maybe_span(obs, "store.get", groups=len(keys)):
        for key in keys:
            if refresh:
                decoded.append(None)
                continue
            body = store.get(key, touch=False)
            entry = _decode_group(body) if body is not None else None
            decoded.append(entry)
            if entry is not None:
                touched.append(key)
        if touched:
            store.touch_many(touched)
    return decoded


def _store_groups(
    store: ResultStore,
    keys: List[str],
    groups: List[Tuple[int, int]],
    missing: List[int],
    solved: "BatchResult",
    obs: Optional["ObsContext"],
) -> None:
    """Persist freshly solved groups (sliced out of ``solved``)."""
    with _maybe_span(obs, "store.put", groups=len(missing)):
        items = {}
        cursor = 0
        for gi in missing:
            start, stop = groups[gi]
            width = stop - start
            items[keys[gi]] = _group_body(solved, cursor, cursor + width)
            cursor += width
        store.put_many(items)


def _run_groups(
    engine: "BatchSolverEngine",
    store: ResultStore,
    keys: List[str],
    groups: List[Tuple[int, int]],
    n: int,
    missing_scenarios_for: "callable",
    parallel: Optional[bool],
    obs: Optional["ObsContext"],
    refresh: bool,
) -> Tuple["BatchResult", StoreReport]:
    """The shared fetch → dispatch-missing → merge → persist pipeline.

    ``missing_scenarios_for(missing_group_indices)`` materialises the
    scenarios of just the missing groups — for sweeps this is the only
    place variants get constructed, so a fully-warm run never builds
    them at all.
    """
    before = store.snapshot_counters()
    decoded = _fetch_groups(store, keys, refresh, obs)
    missing = [gi for gi, entry in enumerate(decoded) if entry is None]
    warm_points = sum(
        groups[gi][1] - groups[gi][0]
        for gi in range(len(groups))
        if decoded[gi] is not None
    )
    solved: Optional["BatchResult"] = None
    if missing:
        to_solve = missing_scenarios_for(missing)
        solved = engine.solve_batch(to_solve, parallel=parallel, obs=obs)
        _store_groups(store, keys, groups, missing, solved, obs)
    result = _assemble(n, groups, decoded, solved, missing)
    report = StoreReport(
        enabled=True,
        points=n,
        warm_points=warm_points,
        entry_hits=len(groups) - len(missing),
        entry_misses=len(missing),
    )
    record_store_metrics(obs, store, before, report)
    return result, report


def _group_bounds(n: int, group_size: int) -> List[Tuple[int, int]]:
    return [
        (start, min(start + group_size, n))
        for start in range(0, n, group_size)
    ]


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------

def solve_incremental(
    engine: "BatchSolverEngine",
    scenario: "Scenario",
    store: ResultStore,
    obs: Optional["ObsContext"] = None,
    refresh: bool = False,
) -> Tuple["OptimalDecision", StoreReport]:
    """One Eq. 2 solve backed by the persistent store.

    The entry is the same group-of-one record ``solve_batch`` uses for
    small batches, so single solves and fleet solves share warm
    results.
    """
    from ..core.optimizer import OptimalDecision

    with _maybe_span(obs, "store.key", points=1):
        point = engine.point_key(scenario)
    if point is None:
        return engine.solve(scenario, obs=obs), StoreReport(enabled=False)
    before = store.snapshot_counters()
    key = _group_key(engine, [point])
    body = None if refresh else store.get(key)
    entry = _decode_group(body) if body is not None else None
    if entry is not None:
        columns, tolerance = entry
        decision = OptimalDecision(
            tolerance_m=tolerance,
            **{name: float(columns[name][0]) for name in _COLUMNS},
        )
        report = StoreReport(
            enabled=True, points=1, warm_points=1, entry_hits=1
        )
        record_store_metrics(obs, store, before, report)
        return decision, report
    decision = engine.solve(scenario, obs=obs)
    from ..engine.batch import BatchResult

    store.put(key, _group_body(BatchResult.from_decisions([decision]), 0, 1))
    report = StoreReport(enabled=True, points=1, entry_misses=1)
    record_store_metrics(obs, store, before, report)
    return decision, report


def solve_batch_incremental(
    engine: "BatchSolverEngine",
    scenarios: Iterable["Scenario"],
    store: ResultStore,
    parallel: Optional[bool] = None,
    obs: Optional["ObsContext"] = None,
    refresh: bool = False,
) -> Tuple["BatchResult", StoreReport]:
    """``engine.solve_batch`` with cached groups served from the store."""
    scenario_list = list(scenarios)
    n = len(scenario_list)
    with _maybe_span(obs, "store.key", points=n):
        points = [engine.point_key(s) for s in scenario_list]
    if n == 0 or any(point is None for point in points):
        result = engine.solve_batch(scenario_list, parallel=parallel, obs=obs)
        return result, StoreReport(enabled=False, points=n)
    group_size = 1 if n <= _POINT_GROUP_LIMIT else engine.chunk_size
    groups = _group_bounds(n, group_size)
    keys = [
        _group_key(engine, points[start:stop]) for start, stop in groups
    ]

    def missing_scenarios_for(missing: List[int]) -> List["Scenario"]:
        return [
            s
            for gi in missing
            for s in scenario_list[groups[gi][0]:groups[gi][1]]
        ]

    return _run_groups(
        engine, store, keys, groups, n,
        missing_scenarios_for, parallel, obs, refresh,
    )


def sweep_incremental(
    engine: "BatchSolverEngine",
    scenario: "Scenario",
    param: str,
    values: Iterable[float],
    store: ResultStore,
    obs: Optional["ObsContext"] = None,
    refresh: bool = False,
) -> Tuple["BatchResult", StoreReport]:
    """``engine.sweep`` with cached value-blocks served from the store.

    Group keys hash the base scenario's parameter tuple plus the swept
    field and the raw float64 block of values, so a fully-warm sweep
    costs a few hashes and file reads — no variant construction, no
    solver work.  ``param`` accepts the same spellings as
    :meth:`Scenario.with_`; the alias is canonicalised (including the
    ``mdata_mb`` MB→bits conversion) so equivalent sweeps share
    entries.
    """
    from ..core.scenario import Scenario

    value_list = list(values)
    field = Scenario._ALIASES.get(param, param)
    try:
        values_arr = np.asarray(value_list, dtype=float)
    except (TypeError, ValueError):
        values_arr = None
    if (
        values_arr is None
        or values_arr.ndim != 1
        or field not in _SWEEPABLE_FIELDS
    ):
        variants = [scenario.with_(**{param: v}) for v in value_list]
        return solve_batch_incremental(
            engine, variants, store, obs=obs, refresh=refresh
        )
    if param == "mdata_mb":
        if np.any(values_arr <= 0):
            raise ValueError("Mdata must be positive")
        values_arr = values_arr * 8e6
    n = int(values_arr.shape[0])
    with _maybe_span(obs, "store.key", points=n):
        base_key = engine.point_key(scenario)
        if base_key is None:
            result = engine.sweep(scenario, param, value_list, obs=obs)
            return result, StoreReport(enabled=False, points=n)
        group_size = 1 if n <= _POINT_GROUP_LIMIT else engine.chunk_size
        groups = _group_bounds(n, group_size)
        keys = [
            _sweep_group_key(engine, base_key, field, values_arr[start:stop])
            for start, stop in groups
        ]

    def missing_scenarios_for(missing: List[int]) -> List["Scenario"]:
        return [
            scenario.with_(**{field: float(value)})
            for gi in missing
            for value in values_arr[groups[gi][0]:groups[gi][1]]
        ]

    return _run_groups(
        engine, store, keys, groups, n,
        missing_scenarios_for, None, obs, refresh,
    )
