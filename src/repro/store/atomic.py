"""Crash-safe filesystem primitives for the result store.

Every byte the store writes goes through :func:`atomic_write_bytes`
(tmp file + ``os.replace``), so a reader can never observe a torn
entry: it sees the old payload, the new payload, or nothing.  This is
the *only* module under :mod:`repro.store` allowed to open files for
writing — reprolint rule RL107 rejects any other write path, which
keeps the crash-safety argument local to this file.

:class:`FileLock` serialises index mutations across processes with an
advisory ``flock`` where the platform offers one, and degrades to a
no-op (never an exception) where it does not — the store's contract is
that a broken or restricted filesystem costs recomputation, not a
crash.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional

__all__ = ["FileLock", "atomic_write_bytes", "atomic_write_text"]

try:  # pragma: no cover - platform probe
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]


def atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (tmp file + rename).

    The temporary file lives in the target directory so the final
    ``os.replace`` is a same-filesystem rename, which POSIX guarantees
    atomic.  Raises ``OSError`` on failure (callers decide whether to
    degrade); never leaves a partial file under the final name.
    """
    path = Path(path)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_text(path: Path, text: str) -> None:
    """UTF-8 convenience wrapper over :func:`atomic_write_bytes`."""
    atomic_write_bytes(path, text.encode("utf-8"))


class FileLock:
    """Advisory inter-process lock around store index mutations.

    ``with FileLock(dir / "lock"):`` holds an exclusive ``flock`` for
    the block.  Anything that prevents locking (no ``fcntl`` on this
    platform, unwritable directory, exotic filesystem) downgrades the
    lock to a no-op and records it on :attr:`degraded` — concurrent
    writers may then race, but the atomic payload writes keep every
    individual entry internally consistent.
    """

    def __init__(self, path: Path) -> None:
        self.path = Path(path)
        self.degraded = False
        self._fd: Optional[int] = None

    def __enter__(self) -> "FileLock":
        if fcntl is None:
            self.degraded = True
            return self
        try:
            self._fd = os.open(self.path, os.O_WRONLY | os.O_CREAT, 0o644)
            fcntl.flock(self._fd, fcntl.LOCK_EX)
        except OSError:
            if self._fd is not None:
                try:
                    os.close(self._fd)
                except OSError:
                    pass
                self._fd = None
            self.degraded = True
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._fd is not None:
            try:
                fcntl.flock(self._fd, fcntl.LOCK_UN)
            except OSError:
                pass
            try:
                os.close(self._fd)
            except OSError:
                pass
            self._fd = None
