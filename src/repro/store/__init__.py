"""Persistent content-addressed result store and incremental execution.

See docs/PERFORMANCE.md ("Result store & incremental sweeps") for the
key-derivation, invalidation, and eviction story.  The store is opt-in
(``REPRO_CACHE_DIR`` / ``REPRO_CACHE=1``; ``REPRO_NO_CACHE=1`` wins)
and degrades to plain recomputation on any filesystem trouble.
"""

from .atomic import FileLock, atomic_write_bytes, atomic_write_text
from .fingerprint import (
    ANALYSIS_CODE_MODULES,
    CAMPAIGN_CODE_MODULES,
    CHAOS_CODE_MODULES,
    RELAY_CODE_MODULES,
    SOLVER_CODE_MODULES,
    STORE_SCHEMA_VERSION,
    canonical_json,
    code_fingerprint,
    config_key,
)
from .incremental import (
    StoreReport,
    record_store_metrics,
    solve_batch_incremental,
    solve_incremental,
    sweep_incremental,
)
from .store import (
    DEFAULT_MAX_BYTES,
    ResultStore,
    cache_enabled_by_env,
    default_cache_dir,
    default_store,
    resolve_store,
)

__all__ = [
    "ANALYSIS_CODE_MODULES",
    "CAMPAIGN_CODE_MODULES",
    "CHAOS_CODE_MODULES",
    "DEFAULT_MAX_BYTES",
    "FileLock",
    "RELAY_CODE_MODULES",
    "ResultStore",
    "SOLVER_CODE_MODULES",
    "STORE_SCHEMA_VERSION",
    "StoreReport",
    "atomic_write_bytes",
    "atomic_write_text",
    "cache_enabled_by_env",
    "canonical_json",
    "code_fingerprint",
    "config_key",
    "default_cache_dir",
    "default_store",
    "record_store_metrics",
    "resolve_store",
    "solve_batch_incremental",
    "solve_incremental",
    "sweep_incremental",
]
