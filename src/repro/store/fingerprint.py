"""Deterministic cache keys for the persistent result store.

A store key must change whenever *anything* that shapes the result
changes, and only then.  Three ingredients go into every key:

* a **canonical-JSON config fingerprint** of the problem parameters
  (scenario/solver/campaign/fault-plan fields, plus the seed where one
  exists) — ``json.dumps`` with sorted keys and compact separators, so
  semantically equal configs serialise to identical bytes, and float
  values round-trip exactly through ``repr``;
* the **store schema version** (:data:`STORE_SCHEMA_VERSION`), bumped
  on any change to the entry payload layout;
* a **code fingerprint** of the modules that produce the result, so a
  code change silently invalidates every stale entry instead of
  serving results a fixed bug would no longer produce.

The code fingerprint hashes the *source bytes* of the named modules
(packages are walked recursively, sorted), which over-invalidates on
comment-only edits — the safe direction — and is computed once per
process per module set.
"""

from __future__ import annotations

import hashlib
import importlib
import json
from pathlib import Path
from typing import Dict, Iterable, Optional, Tuple

__all__ = [
    "STORE_SCHEMA_VERSION",
    "ANALYSIS_CODE_MODULES",
    "CAMPAIGN_CODE_MODULES",
    "CHAOS_CODE_MODULES",
    "RELAY_CODE_MODULES",
    "SOLVER_CODE_MODULES",
    "canonical_json",
    "code_fingerprint",
    "config_key",
]

#: Bumped on any backwards-incompatible change to store entry payloads.
STORE_SCHEMA_VERSION = 1

# The three result tuples below must cover the static import closure
# of their entry module — reprolint rule RL108 (fingerprint-
# completeness) verifies this on every lint run, so a new import in
# the engine/campaign/chaos path fails CI until it is fingerprinted.

#: Modules whose source shapes an Eq. 2 decision (point/sweep entries).
SOLVER_CODE_MODULES = (
    "repro.engine.batch",
    "repro.engine.cache",
    "repro.core.optimizer",
    "repro.core.throughput",
    "repro.core.utility",
    "repro.core.delay",
    "repro.core.failure",
    "repro.core.scenario",
    "repro.core.mission",
    "repro.airframe.platform",
    "repro.measurements.datasets",
)

#: Modules/packages whose source shapes a campaign shard's samples.
CAMPAIGN_CODE_MODULES = (
    "repro.measurements.batch",
    "repro.net",
    "repro.phy",
    "repro.channel",
    "repro.faults",
    "repro.sim",
    "repro.mac",
)

#: Modules/packages whose source shapes a chaos run.
CHAOS_CODE_MODULES = (
    "repro.faults",
    "repro.net",
    "repro.phy",
    "repro.channel",
    "repro.sim",
    "repro.mission.ferry",
    "repro.core",
    "repro.engine",
    "repro.airframe",
    "repro.geo.coords",
    "repro.mac",
    "repro.measurements.datasets",
)

#: Modules whose source shapes a relay-chain decision: the relay
#: model/solvers plus the full single-link solver closure they chain.
RELAY_CODE_MODULES = (
    "repro.relay.batch",
    "repro.relay.solver",
    "repro.relay.chain",
    "repro.engine.batch",
    "repro.engine.cache",
    "repro.core.optimizer",
    "repro.core.throughput",
    "repro.core.utility",
    "repro.core.delay",
    "repro.core.failure",
    "repro.core.scenario",
    "repro.core.mission",
    "repro.airframe.platform",
    "repro.measurements.datasets",
)

#: The analysis package itself — keys the per-file lint records, so
#: editing any checker invalidates every cached lint result.
ANALYSIS_CODE_MODULES = ("repro.analysis",)

_CODE_FP_CACHE: Dict[Tuple[str, ...], str] = {}


def canonical_json(payload: object) -> str:
    """The one canonical JSON encoding: sorted keys, compact, exact.

    Floats serialise via ``repr`` (shortest round-trip), so equal
    values always produce equal bytes and decoded values are
    bit-identical to what was stored.
    """
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def _module_sources(spec: str) -> Iterable[Path]:
    """Source files of one module spec (packages walked recursively)."""
    module = importlib.import_module(spec)
    module_file = getattr(module, "__file__", None)
    if module_file is None:  # pragma: no cover - namespace package guard
        return []
    path = Path(module_file)
    if path.name == "__init__.py":
        return sorted(path.parent.rglob("*.py"))
    return [path]


def code_fingerprint(modules: Tuple[str, ...]) -> str:
    """SHA-256 over the source bytes of ``modules`` (cached per process).

    Unimportable or unreadable modules contribute their name plus a
    missing-marker instead of raising — a half-installed tree should
    fingerprint *differently*, not crash the cache layer.
    """
    cached = _CODE_FP_CACHE.get(modules)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    for spec in modules:
        digest.update(spec.encode("utf-8"))
        try:
            for source in _module_sources(spec):
                digest.update(source.name.encode("utf-8"))
                digest.update(source.read_bytes())
        except (ImportError, OSError):
            digest.update(b"<missing>")
    fingerprint = digest.hexdigest()
    _CODE_FP_CACHE[modules] = fingerprint
    return fingerprint


def config_key(
    kind: str,
    config: object,
    code_modules: Tuple[str, ...],
    extra_bytes: Optional[bytes] = None,
) -> str:
    """The store key for one result: SHA-256 over the canonical parts.

    ``config`` must be canonical-JSON-able (dicts/lists/tuples of
    scalars).  ``extra_bytes`` appends raw bytes that are already
    canonical (e.g. the ``tobytes()`` of a float64 sweep-value array)
    without paying a JSON encode for them.
    """
    digest = hashlib.sha256()
    digest.update(
        canonical_json(
            {
                "kind": kind,
                "schema": STORE_SCHEMA_VERSION,
                "code": code_fingerprint(code_modules),
                "config": config,
            }
        ).encode("utf-8")
    )
    if extra_bytes is not None:
        digest.update(extra_bytes)
    return digest.hexdigest()
