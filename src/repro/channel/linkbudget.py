"""Link budget: transmit power, antenna gains, noise floor, SNR.

The budget also carries an *aerial SNR ceiling*: even at point-blank
range the paper's airborne links never approach their indoor
performance (~176 Mb/s indoors vs ~20 Mb/s in the air with auto rate).
Vibration-induced phase noise, planar-antenna misalignment and the lack
of spatial diversity put a hard ceiling on the usable SNR, which we
model as a cap applied after the path-loss computation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["LinkBudget", "noise_floor_dbm"]

BOLTZMANN_DBM_PER_HZ = -174.0


def noise_floor_dbm(bandwidth_hz: float, noise_figure_db: float = 5.0) -> float:
    """Thermal noise floor for the given bandwidth and receiver noise figure."""
    if bandwidth_hz <= 0:
        raise ValueError("bandwidth must be positive")
    if noise_figure_db < 0:
        raise ValueError("noise figure must be non-negative")
    return BOLTZMANN_DBM_PER_HZ + 10.0 * math.log10(bandwidth_hz) + noise_figure_db


@dataclass(frozen=True)
class LinkBudget:
    """Static RF parameters of one link."""

    tx_power_dbm: float = 15.0
    tx_antenna_gain_dbi: float = 2.0
    rx_antenna_gain_dbi: float = 2.0
    bandwidth_hz: float = 40e6
    noise_figure_db: float = 5.0
    #: Ceiling on the usable SNR of an airborne link (dB); ``inf`` disables.
    snr_cap_db: float = float("inf")

    def __post_init__(self) -> None:
        if self.bandwidth_hz <= 0:
            raise ValueError("bandwidth must be positive")
        if self.noise_figure_db < 0:
            raise ValueError("noise figure must be non-negative")

    @property
    def noise_floor_dbm(self) -> float:
        """Receiver noise floor in dBm."""
        return noise_floor_dbm(self.bandwidth_hz, self.noise_figure_db)

    @property
    def eirp_dbm(self) -> float:
        """Effective isotropic radiated power."""
        return self.tx_power_dbm + self.tx_antenna_gain_dbi

    def rx_power_dbm(self, path_loss_db: float) -> float:
        """Received power after the given path loss."""
        return self.eirp_dbm - path_loss_db + self.rx_antenna_gain_dbi

    def snr_db(self, path_loss_db: float) -> float:
        """Mean SNR after the path loss, clipped at the aerial ceiling."""
        snr = self.rx_power_dbm(path_loss_db) - self.noise_floor_dbm
        return min(snr, self.snr_cap_db)
