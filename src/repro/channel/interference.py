"""Co-channel interference sources.

The testbed selected channel 40 (5 GHz) precisely to escape the 2.4 GHz
band shared with the XBee control link; residual interference is small
but non-zero.  An :class:`InterferenceField` aggregates point sources
and converts their received power into an SNR degradation (treating
interference as additional noise, i.e. an SINR computation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from ..geo.coords import EnuPoint
from .pathloss import FreeSpacePathLoss, PathLossModel

__all__ = ["InterferenceSource", "InterferenceField"]


@dataclass(frozen=True)
class InterferenceSource:
    """A point interferer with a transmit power and duty cycle."""

    position: EnuPoint
    tx_power_dbm: float
    duty_cycle: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.duty_cycle <= 1.0:
            raise ValueError("duty_cycle must be within [0, 1]")


class InterferenceField:
    """Aggregates interferers into an effective noise rise at a receiver."""

    def __init__(self, pathloss: PathLossModel | None = None) -> None:
        self._pathloss = pathloss if pathloss is not None else FreeSpacePathLoss()
        self._sources: List[InterferenceSource] = []

    def add(self, source: InterferenceSource) -> None:
        """Register an interference source."""
        self._sources.append(source)

    @property
    def sources(self) -> List[InterferenceSource]:
        """The registered sources (shallow copy)."""
        return list(self._sources)

    def interference_dbm(self, receiver: EnuPoint) -> float:
        """Total mean interference power at ``receiver`` (dBm).

        Returns ``-inf`` when no source contributes.
        """
        total_mw = 0.0
        for src in self._sources:
            if src.duty_cycle <= 0.0:
                continue
            distance = max(1.0, src.position.distance_to(receiver))
            rx_dbm = src.tx_power_dbm - self._pathloss.loss_db(distance)
            total_mw += src.duty_cycle * 10.0 ** (rx_dbm / 10.0)
        if total_mw <= 0.0:
            return float("-inf")
        return 10.0 * math.log10(total_mw)

    def snr_degradation_db(self, receiver: EnuPoint, noise_floor_dbm: float) -> float:
        """How many dB the effective noise floor rises at ``receiver``."""
        interference = self.interference_dbm(receiver)
        if interference == float("-inf"):
            return 0.0
        noise_mw = 10.0 ** (noise_floor_dbm / 10.0)
        total_mw = noise_mw + 10.0 ** (interference / 10.0)
        return 10.0 * math.log10(total_mw / noise_mw)
