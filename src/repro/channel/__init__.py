"""Aerial wireless channel: path loss, fading, link budget, mobility."""

from .antenna import AttitudeState, DipolePattern, orientation_loss_db
from .channel import (
    AerialChannel,
    BatchAerialChannel,
    ChannelProfile,
    airplane_profile,
    indoor_profile,
    quadrocopter_profile,
)
from .fading import (
    BatchGaussMarkovShadowing,
    BatchRicianFading,
    GaussMarkovShadowing,
    RicianFading,
    ShadowingConfig,
    doppler_coherence_time_s,
)
from .interference import InterferenceField, InterferenceSource
from .linkbudget import LinkBudget, noise_floor_dbm
from .mobility import SpeedPenalty
from .pathloss import (
    DualSlopePathLoss,
    FreeSpacePathLoss,
    LogDistancePathLoss,
    ObstacleLoss,
    PathLossModel,
    TwoRayGroundPathLoss,
)

__all__ = [
    "AttitudeState",
    "DipolePattern",
    "orientation_loss_db",
    "AerialChannel",
    "BatchAerialChannel",
    "ChannelProfile",
    "airplane_profile",
    "indoor_profile",
    "quadrocopter_profile",
    "BatchGaussMarkovShadowing",
    "BatchRicianFading",
    "GaussMarkovShadowing",
    "RicianFading",
    "ShadowingConfig",
    "doppler_coherence_time_s",
    "InterferenceField",
    "InterferenceSource",
    "LinkBudget",
    "noise_floor_dbm",
    "SpeedPenalty",
    "DualSlopePathLoss",
    "FreeSpacePathLoss",
    "LogDistancePathLoss",
    "ObstacleLoss",
    "PathLossModel",
    "TwoRayGroundPathLoss",
]
