"""Mobility impact on the aerial link.

Figure 7 (right) of the paper shows throughput at a fixed 60 m distance
collapsing as the transmitting quadrocopter's speed grows.  Two effects
drive this and both are modelled:

* a mean SNR penalty growing with speed (airframe pitch tilts the
  antennas off boresight; vibration raises the phase-noise floor), and
* a Doppler-driven collapse of the channel coherence time, which breaks
  rate adaptation (see :func:`repro.channel.fading.doppler_coherence_time_s`).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SpeedPenalty"]


@dataclass(frozen=True)
class SpeedPenalty:
    """Linear-with-saturation SNR penalty for a moving transmitter.

    ``penalty_db(v) = min(max_penalty_db, slope_db_per_mps * v)``.
    """

    slope_db_per_mps: float = 0.55
    max_penalty_db: float = 12.0

    def __post_init__(self) -> None:
        if self.slope_db_per_mps < 0:
            raise ValueError("slope must be non-negative")
        if self.max_penalty_db < 0:
            raise ValueError("max penalty must be non-negative")

    def penalty_db(self, relative_speed_mps: float) -> float:
        """SNR penalty (dB, >= 0) at the given relative speed."""
        if relative_speed_mps < 0:
            raise ValueError("speed must be non-negative")
        return min(self.max_penalty_db, self.slope_db_per_mps * relative_speed_mps)
