"""Path-loss models for air-to-air links.

The library ships the classic free-space and log-distance laws plus a
dual-slope variant.  The paper's airplane measurements show a mild
degradation up to roughly 160 m and a much steeper one beyond — the
signature of a dual-slope law (antenna-pattern edges and ground
interactions) — so :class:`DualSlopePathLoss` is the default for the
aerial profiles.  :class:`ObstacleLoss` implements the "walls and other
obstacles" extension the paper's discussion section calls for.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol

__all__ = [
    "PathLossModel",
    "FreeSpacePathLoss",
    "LogDistancePathLoss",
    "DualSlopePathLoss",
    "TwoRayGroundPathLoss",
    "ObstacleLoss",
    "SPEED_OF_LIGHT",
]

SPEED_OF_LIGHT = 299_792_458.0


class PathLossModel(Protocol):
    """Anything that maps a distance (m) to a path loss (dB)."""

    def loss_db(self, distance_m: float) -> float:
        """Path loss in dB at ``distance_m`` metres (>= some small epsilon)."""
        ...


def _check_distance(distance_m: float) -> float:
    if distance_m <= 0:
        raise ValueError(f"distance must be positive, got {distance_m}")
    # Below one metre the far-field assumption collapses; clamp.
    return max(distance_m, 1.0)


@dataclass(frozen=True)
class FreeSpacePathLoss:
    """Friis free-space loss at carrier ``frequency_hz``."""

    frequency_hz: float = 5.2e9

    def loss_db(self, distance_m: float) -> float:
        d = _check_distance(distance_m)
        wavelength = SPEED_OF_LIGHT / self.frequency_hz
        return 20.0 * math.log10(4.0 * math.pi * d / wavelength)


@dataclass(frozen=True)
class LogDistancePathLoss:
    """Log-distance law: ``PL(d) = PL(d_ref) + 10 n log10(d/d_ref)``."""

    exponent: float = 2.0
    reference_loss_db: float = 47.0
    reference_distance_m: float = 1.0

    def __post_init__(self) -> None:
        if self.exponent <= 0:
            raise ValueError("path-loss exponent must be positive")
        if self.reference_distance_m <= 0:
            raise ValueError("reference distance must be positive")

    def loss_db(self, distance_m: float) -> float:
        d = _check_distance(distance_m)
        return self.reference_loss_db + 10.0 * self.exponent * math.log10(
            d / self.reference_distance_m
        )


@dataclass(frozen=True)
class DualSlopePathLoss:
    """Two log-distance segments joined at a breakpoint distance.

    Below ``breakpoint_m`` the loss grows with exponent ``near_exponent``;
    beyond it, with ``far_exponent``.  Continuous at the breakpoint.
    """

    near_exponent: float = 2.0
    far_exponent: float = 4.0
    breakpoint_m: float = 160.0
    reference_loss_db: float = 47.0
    reference_distance_m: float = 1.0

    def __post_init__(self) -> None:
        if self.near_exponent <= 0 or self.far_exponent <= 0:
            raise ValueError("path-loss exponents must be positive")
        if self.breakpoint_m <= self.reference_distance_m:
            raise ValueError("breakpoint must exceed the reference distance")

    def loss_db(self, distance_m: float) -> float:
        d = _check_distance(distance_m)
        near = LogDistancePathLoss(
            self.near_exponent, self.reference_loss_db, self.reference_distance_m
        )
        if d <= self.breakpoint_m:
            return near.loss_db(d)
        at_break = near.loss_db(self.breakpoint_m)
        return at_break + 10.0 * self.far_exponent * math.log10(d / self.breakpoint_m)


@dataclass(frozen=True)
class TwoRayGroundPathLoss:
    """Two-ray ground-reflection model for low-altitude links.

    Valid beyond the crossover distance ``4 pi h_t h_r / lambda``; below
    it we fall back to free space.  Relevant for the quadrocopter tests
    flown at only 10 m altitude.
    """

    tx_height_m: float = 10.0
    rx_height_m: float = 10.0
    frequency_hz: float = 5.2e9

    def __post_init__(self) -> None:
        if self.tx_height_m <= 0 or self.rx_height_m <= 0:
            raise ValueError("antenna heights must be positive")

    @property
    def crossover_distance_m(self) -> float:
        """Distance beyond which the two-ray approximation applies."""
        wavelength = SPEED_OF_LIGHT / self.frequency_hz
        return 4.0 * math.pi * self.tx_height_m * self.rx_height_m / wavelength

    def loss_db(self, distance_m: float) -> float:
        d = _check_distance(distance_m)
        if d < self.crossover_distance_m:
            return FreeSpacePathLoss(self.frequency_hz).loss_db(d)
        return 40.0 * math.log10(d) - 20.0 * math.log10(
            self.tx_height_m * self.rx_height_m
        )


class ObstacleLoss:
    """Wraps a path-loss model with a fixed excess loss (walls, foliage).

    This is the extension flagged in the paper's discussion: "to account
    also for walls and other obstacles, our model requires an
    extension".  The excess is added on top of the base model.
    """

    def __init__(self, base: PathLossModel, excess_db: float) -> None:
        if excess_db < 0:
            raise ValueError("excess loss must be non-negative")
        self._base = base
        self.excess_db = excess_db

    def loss_db(self, distance_m: float) -> float:
        """Base loss plus the obstacle excess."""
        return self._base.loss_db(distance_m) + self.excess_db
