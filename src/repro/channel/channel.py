"""The aerial channel: profiles and the stateful SNR sampler.

A :class:`ChannelProfile` bundles everything static about a link class
(path loss, link budget, fading statistics, mobility penalty); an
:class:`AerialChannel` instance adds the time-evolving fading state and
produces per-burst SNR samples for the PHY.

Three calibrated profiles are provided:

* :func:`airplane_profile` — two Swinglets at 80-100 m altitude.
  Dual-slope path loss (gentle to ~160 m, steep beyond) with a 14 dB
  aerial SNR ceiling; reproduces the paper's Fig. 5/6 medians.
* :func:`quadrocopter_profile` — two Arducopters hovering at 10 m.
  Ground proximity steepens the effective distance law; smaller
  shadowing variance (hovering is stabler than banking flight).
* :func:`indoor_profile` — the authors' indoor sanity check
  (~176 Mb/s with 802.11n); no aerial ceiling, benign fading.

Calibration note: the reference losses and the SNR ceilings are *fitted*
so the simulated auto-rate medians track the paper's logarithmic
throughput fits (Section 4); they are not free-space values.  See
DESIGN.md for the substitution rationale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..sim.random import RandomStreams
from .fading import (
    BatchGaussMarkovShadowing,
    BatchRicianFading,
    GaussMarkovShadowing,
    RicianFading,
    ShadowingConfig,
)
from .linkbudget import LinkBudget
from .mobility import SpeedPenalty
from .pathloss import (
    DualSlopePathLoss,
    FreeSpacePathLoss,
    LogDistancePathLoss,
    PathLossModel,
)

__all__ = [
    "ChannelProfile",
    "AerialChannel",
    "BatchAerialChannel",
    "airplane_profile",
    "quadrocopter_profile",
    "indoor_profile",
]


@dataclass(frozen=True)
class ChannelProfile:
    """Static description of one link class."""

    name: str
    pathloss: PathLossModel
    budget: LinkBudget
    shadowing: ShadowingConfig
    speed_penalty: SpeedPenalty = SpeedPenalty()
    rician_k_hover_db: float = 12.0
    rician_k_floor_db: float = 0.0
    rician_speed_scale_mps: float = 6.0
    #: Motion accelerates the attitude dynamics: the shadowing process
    #: decorrelates faster by ``1 + v / fading_clock_speed_scale_mps``.
    #: ``inf`` disables the effect (fixed-wing cruise is attitude-steady;
    #: its calibration already embodies in-flight dynamics).
    fading_clock_speed_scale_mps: float = float("inf")
    #: Minimum distance the sampler accepts (collision-safety floor).
    min_distance_m: float = 1.0

    def mean_snr_db(self, distance_m: float, relative_speed_mps: float = 0.0) -> float:
        """Mean SNR at this distance/speed, before fading."""
        distance = max(distance_m, self.min_distance_m)
        snr = self.budget.snr_db(self.pathloss.loss_db(distance))
        return snr - self.speed_penalty.penalty_db(relative_speed_mps)


class AerialChannel:
    """Stateful channel: mean SNR plus correlated fading realisations.

    One instance models one directed link.  ``sample_snr_db`` must be
    called with non-decreasing timestamps; each call returns the SNR
    seen by one transmission burst (an A-MPDU).
    """

    def __init__(
        self,
        profile: ChannelProfile,
        streams: Optional[RandomStreams] = None,
        stream_name: str = "channel",
    ) -> None:
        self.profile = profile
        streams = streams if streams is not None else RandomStreams(seed=0)
        self._shadowing = GaussMarkovShadowing(
            profile.shadowing, streams.get(f"{stream_name}.shadowing")
        )
        self._rician = RicianFading(
            streams.get(f"{stream_name}.rician"),
            k_factor_hover_db=profile.rician_k_hover_db,
            k_factor_floor_db=profile.rician_k_floor_db,
            speed_scale_mps=profile.rician_speed_scale_mps,
        )
        self._last_time: Optional[float] = None
        self._fading_clock = 0.0

    def mean_snr_db(self, distance_m: float, relative_speed_mps: float = 0.0) -> float:
        """Mean (large-scale) SNR; delegates to the profile."""
        return self.profile.mean_snr_db(distance_m, relative_speed_mps)

    def sample_snr_db(
        self,
        now_s: float,
        distance_m: float,
        relative_speed_mps: float = 0.0,
    ) -> float:
        """One SNR realisation at time ``now_s``.

        Mean SNR (with the mobility penalty) plus correlated shadowing
        plus a fresh small-scale Rician draw whose K-factor shrinks with
        speed.
        """
        mean = self.mean_snr_db(distance_m, relative_speed_mps)
        # Motion accelerates the attitude dynamics: advance the fading
        # clock faster than wall time so the shadowing decorrelates more
        # quickly while the platform translates.
        if self._last_time is None:
            self._fading_clock = now_s
        else:
            dt = max(0.0, now_s - self._last_time)
            scale = self.profile.fading_clock_speed_scale_mps
            warp = 1.0 + (relative_speed_mps / scale if scale != float("inf") else 0.0)
            self._fading_clock += dt * warp
        self._last_time = now_s
        shadow = self._shadowing.sample(self._fading_clock)
        fast = self._rician.sample_db(relative_speed_mps)
        return mean + shadow + fast


class BatchAerialChannel:
    """R independent replicas of one link class, sampled in lockstep.

    Each replica has its own shadowing/Rician fading state; all draw
    ``(R,)`` arrays from the same named streams an :class:`AerialChannel`
    would use, so a batch of one replica is bit-identical to the scalar
    channel for the same :class:`~repro.sim.random.RandomStreams` seed.

    The mean (large-scale) SNR is a pure function of ``(distance,
    speed)`` and is evaluated through the scalar
    :meth:`ChannelProfile.mean_snr_db` with a memo on the last input
    arrays — campaigns hold distance constant per replica, so the mean
    is computed once and every subsequent epoch is a cache hit (the
    ``mean_cache_hits`` counter surfaces in the perf telemetry).
    """

    def __init__(
        self,
        profile: ChannelProfile,
        n_replicas: int,
        streams: Optional[RandomStreams] = None,
        stream_name: str = "channel",
    ) -> None:
        if n_replicas < 1:
            raise ValueError("n_replicas must be >= 1")
        self.profile = profile
        self.n_replicas = n_replicas
        streams = streams if streams is not None else RandomStreams(seed=0)
        self._shadowing = BatchGaussMarkovShadowing(
            profile.shadowing, streams.get(f"{stream_name}.shadowing"), n_replicas
        )
        self._rician = BatchRicianFading(
            streams.get(f"{stream_name}.rician"),
            n_replicas,
            k_factor_hover_db=profile.rician_k_hover_db,
            k_factor_floor_db=profile.rician_k_floor_db,
            speed_scale_mps=profile.rician_speed_scale_mps,
        )
        self._last_time: Optional[float] = None
        self._fading_clock = np.zeros(n_replicas)
        self._mean_cache: Optional[tuple] = None
        self.mean_cache_hits = 0
        self.mean_cache_misses = 0

    def _as_replica_array(self, values, name: str) -> np.ndarray:
        arr = np.asarray(values, dtype=float)
        if arr.ndim == 0:
            arr = np.full(self.n_replicas, float(arr))
        if arr.shape != (self.n_replicas,):
            raise ValueError(
                f"{name} must be scalar or shape ({self.n_replicas},), "
                f"got {arr.shape}"
            )
        return arr

    def mean_snr_db_batch(
        self, distance_m, relative_speed_mps=0.0
    ) -> np.ndarray:
        """Per-replica mean SNR, memoised on the last (distance, speed)."""
        d = self._as_replica_array(distance_m, "distance_m")
        v = self._as_replica_array(relative_speed_mps, "relative_speed_mps")
        if self._mean_cache is not None:
            cached_d, cached_v, cached_mean = self._mean_cache
            if np.array_equal(d, cached_d) and np.array_equal(v, cached_v):
                self.mean_cache_hits += 1
                return cached_mean
        # Scalar evaluation keeps the batch bit-identical to the scalar
        # channel; the memo makes it O(R) once instead of per epoch.
        mean = np.array(
            [self.profile.mean_snr_db(d[i], v[i]) for i in range(self.n_replicas)]
        )
        self._mean_cache = (d.copy(), v.copy(), mean)
        self.mean_cache_misses += 1
        return mean

    def sample_snr_db_batch(
        self,
        now_s: float,
        distance_m,
        relative_speed_mps=0.0,
    ) -> np.ndarray:
        """One SNR realisation per replica at the shared time ``now_s``."""
        d = self._as_replica_array(distance_m, "distance_m")
        v = self._as_replica_array(relative_speed_mps, "relative_speed_mps")
        mean = self.mean_snr_db_batch(d, v)
        if self._last_time is None:
            self._fading_clock = np.full(self.n_replicas, float(now_s))
        else:
            dt = max(0.0, now_s - self._last_time)
            scale = self.profile.fading_clock_speed_scale_mps
            warp = 1.0 + (v / scale if scale != float("inf") else 0.0)
            self._fading_clock = self._fading_clock + dt * warp
        self._last_time = now_s
        shadow = self._shadowing.sample(self._fading_clock)
        fast = self._rician.sample_db(v)
        return mean + shadow + fast


# ----------------------------------------------------------------------
# Calibrated profiles
# ----------------------------------------------------------------------

def airplane_profile() -> ChannelProfile:
    """Two fixed-wing Swinglets, 80-100 m altitude, 5 GHz / 40 MHz.

    Calibrated so that the fly-by campaign's auto-rate medians
    reproduce the paper's airplane fit ``s(d) = 1e6 (-5.56 log2 d + 49)``
    — measured: slope -5.3, intercept 46.1, R^2 = 0.94 — and the best
    fixed MCS per distance matches Fig. 6 (MCS3 to ~180 m, MCS1 at
    200-220 m, MCS8 from 240 m).
    """
    return ChannelProfile(
        name="airplane",
        pathloss=DualSlopePathLoss(
            near_exponent=0.912,
            far_exponent=3.58,
            breakpoint_m=210.0,
            reference_loss_db=83.11,
        ),
        budget=LinkBudget(snr_cap_db=17.0),
        shadowing=ShadowingConfig(
            sigma_db=4.5,
            coherence_time_s=0.25,
            dropout_probability=0.12,
            dropout_depth_db=15.0,
        ),
        # The airplane fit was measured *in flight* (relative speeds of
        # 15-26 m/s), so motion effects are already embodied in the
        # path-loss/shadowing calibration; no extra speed penalty.
        speed_penalty=SpeedPenalty(slope_db_per_mps=0.0, max_penalty_db=0.0),
        rician_k_hover_db=10.0,
        min_distance_m=20.0,
    )


def quadrocopter_profile() -> ChannelProfile:
    """Two Arducopters hovering at 10 m altitude, 5 GHz / 40 MHz.

    Calibrated so the simulated auto-rate (ARF) medians reproduce the
    paper's quadrocopter fit ``s(d) = 1e6 (-10.5 log2 d + 73)`` —
    measured: slope -10.3, intercept 70.8, R^2 = 1.00.  Hovering is
    calmer than banking flight (smaller shadowing variance, fewer
    dropouts), matching the lower variability of Fig. 7 vs Fig. 5.
    """
    return ChannelProfile(
        name="quadrocopter",
        pathloss=LogDistancePathLoss(exponent=1.246, reference_loss_db=83.6),
        budget=LinkBudget(snr_cap_db=20.0),
        shadowing=ShadowingConfig(
            sigma_db=3.0,
            coherence_time_s=0.5,
            dropout_probability=0.06,
            dropout_depth_db=14.0,
        ),
        speed_penalty=SpeedPenalty(slope_db_per_mps=0.9),
        rician_k_hover_db=12.0,
        rician_speed_scale_mps=8.0,
        fading_clock_speed_scale_mps=3.0,
        min_distance_m=5.0,
    )


def indoor_profile() -> ChannelProfile:
    """Benign indoor reference link (the authors' ~176 Mb/s lab test)."""
    return ChannelProfile(
        name="indoor",
        pathloss=FreeSpacePathLoss(),
        budget=LinkBudget(snr_cap_db=35.0),
        shadowing=ShadowingConfig(
            sigma_db=2.0,
            coherence_time_s=2.0,
            dropout_probability=0.0,
            dropout_depth_db=0.0,
        ),
        speed_penalty=SpeedPenalty(slope_db_per_mps=0.0, max_penalty_db=0.0),
        rician_k_hover_db=15.0,
        min_distance_m=1.0,
    )
