"""Fading processes for the aerial channel.

Two time scales matter for the paper's observations:

* **Slow attitude/orientation fading** — banking airplanes and tilting
  quadrocopters swing their planar antennas through nulls.  Modelled as
  a first-order Gauss-Markov (exponentially correlated) process in dB
  with occasional deep *dropouts* (orientation nulls), the main reason
  auto-rate adaptation collapses in the air.
* **Fast multipath fading** — Rician small-scale fading whose coherence
  time shrinks with relative speed (Doppler), the reason 'move and
  transmit' underperforms.

Each process has a *batched* twin (:class:`BatchGaussMarkovShadowing`,
:class:`BatchRicianFading`) that evolves R independent replicas in
lockstep NumPy.  The scalar classes route their transcendental math
through the same NumPy ufuncs so a batch of one replica consuming the
same stream is bit-identical to the scalar process — the foundation of
the lockstep-equivalence guarantee of
:class:`~repro.net.batchlink.BatchWirelessLink`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "ShadowingConfig",
    "GaussMarkovShadowing",
    "BatchGaussMarkovShadowing",
    "RicianFading",
    "BatchRicianFading",
    "doppler_coherence_time_s",
]


def doppler_coherence_time_s(
    relative_speed_mps: float, frequency_hz: float = 5.2e9
) -> float:
    """Channel coherence time from the classic ``0.423 / f_d`` rule.

    ``f_d = v / lambda`` is the maximum Doppler shift.  For v = 8 m/s at
    5.2 GHz this gives roughly 3 ms — far below any rate-adaptation
    update interval, which is why moving transmitters fare so poorly.
    """
    if relative_speed_mps < 0:
        raise ValueError("speed must be non-negative")
    wavelength = 299_792_458.0 / frequency_hz
    doppler_hz = relative_speed_mps / wavelength
    if doppler_hz <= 1e-9:
        return float("inf")
    return 0.423 / doppler_hz


@dataclass(frozen=True)
class ShadowingConfig:
    """Parameters of the slow attitude/orientation fading process."""

    sigma_db: float = 4.0
    #: Correlation time of the attitude swings (seconds).
    coherence_time_s: float = 0.5
    #: Probability that a coherence epoch is an orientation null.
    dropout_probability: float = 0.05
    #: Extra attenuation during a null (dB).
    dropout_depth_db: float = 15.0

    def __post_init__(self) -> None:
        if self.sigma_db < 0:
            raise ValueError("sigma_db must be non-negative")
        if self.coherence_time_s <= 0:
            raise ValueError("coherence_time_s must be positive")
        if not 0.0 <= self.dropout_probability <= 1.0:
            raise ValueError("dropout_probability must be in [0, 1]")
        if self.dropout_depth_db < 0:
            raise ValueError("dropout_depth_db must be non-negative")


class GaussMarkovShadowing:
    """Exponentially correlated log-normal shadowing with dropouts.

    ``sample(now)`` returns the current shadowing term in dB (negative =
    fade).  Between calls the process decorrelates with the configured
    coherence time; dropout epochs are redrawn whenever the process has
    decorrelated by more than one coherence time.
    """

    def __init__(self, config: ShadowingConfig, rng: np.random.Generator) -> None:
        self.config = config
        self._rng = rng
        self._value = float(rng.normal(0.0, config.sigma_db)) if config.sigma_db else 0.0
        self._in_dropout = bool(rng.random() < config.dropout_probability)
        self._last_time: float | None = None
        self._epoch_elapsed = 0.0

    def sample(self, now_s: float) -> float:
        """Shadowing value (dB) at time ``now_s`` (non-decreasing calls)."""
        cfg = self.config
        if self._last_time is not None:
            dt = max(0.0, now_s - self._last_time)
            if cfg.sigma_db > 0:
                # np.exp (not math.exp) so the batched twin matches bit
                # for bit — NumPy's scalar and array ufunc paths agree,
                # libm's does not always.
                alpha = float(np.exp(-dt / cfg.coherence_time_s))
                drive = cfg.sigma_db * math.sqrt(max(0.0, 1.0 - alpha * alpha))
                self._value = alpha * self._value + float(
                    self._rng.normal(0.0, 1.0)
                ) * drive
            self._epoch_elapsed += dt
            if self._epoch_elapsed >= cfg.coherence_time_s:
                self._epoch_elapsed = 0.0
                self._in_dropout = bool(
                    self._rng.random() < cfg.dropout_probability
                )
        self._last_time = now_s
        value = self._value
        if self._in_dropout:
            value -= cfg.dropout_depth_db
        return value


class BatchGaussMarkovShadowing:
    """R independent Gauss-Markov shadowing replicas stepped in lockstep.

    All replicas share one generator and draw ``(R,)`` arrays per step,
    so a batch with ``n_replicas == 1`` consumes the stream exactly as
    the scalar :class:`GaussMarkovShadowing` does and reproduces it bit
    for bit.  Dropout epochs are redrawn per replica only when that
    replica's fading clock has decorrelated — masked draws keep the
    stream consumption identical in the R = 1 case.
    """

    def __init__(
        self,
        config: ShadowingConfig,
        rng: np.random.Generator,
        n_replicas: int,
    ) -> None:
        if n_replicas < 1:
            raise ValueError("n_replicas must be >= 1")
        self.config = config
        self.n_replicas = n_replicas
        self._rng = rng
        if config.sigma_db:
            self._value = rng.normal(0.0, config.sigma_db, size=n_replicas)
        else:
            self._value = np.zeros(n_replicas)
        self._in_dropout = rng.random(size=n_replicas) < config.dropout_probability
        self._last_time: "np.ndarray | None" = None
        self._epoch_elapsed = np.zeros(n_replicas)

    def sample(self, now_s: np.ndarray) -> np.ndarray:
        """Per-replica shadowing (dB) at the per-replica clocks ``now_s``."""
        cfg = self.config
        now = np.asarray(now_s, dtype=float)
        if now.shape != (self.n_replicas,):
            raise ValueError(
                f"now_s must have shape ({self.n_replicas},), got {now.shape}"
            )
        if self._last_time is not None:
            dt = np.maximum(0.0, now - self._last_time)
            if cfg.sigma_db > 0:
                alpha = np.exp(-dt / cfg.coherence_time_s)
                drive = cfg.sigma_db * np.sqrt(
                    np.maximum(0.0, 1.0 - alpha * alpha)
                )
                self._value = alpha * self._value + self._rng.normal(
                    0.0, 1.0, size=self.n_replicas
                ) * drive
            self._epoch_elapsed += dt
            expired = self._epoch_elapsed >= cfg.coherence_time_s
            n_expired = int(np.count_nonzero(expired))
            if n_expired:
                self._epoch_elapsed[expired] = 0.0
                self._in_dropout[expired] = (
                    self._rng.random(size=n_expired) < cfg.dropout_probability
                )
        self._last_time = now.copy()
        return np.where(
            self._in_dropout, self._value - cfg.dropout_depth_db, self._value
        )


class RicianFading:
    """Small-scale Rician fading sampled per transmission burst.

    The K-factor (ratio of line-of-sight to scattered power) shrinks
    with relative speed: a fast-moving airframe sweeps through the
    ground-reflection interference pattern and its attitude jitters,
    scattering more energy off the direct path.

    ``sample_db(speed)`` returns the instantaneous fading gain in dB
    relative to the mean channel.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        k_factor_hover_db: float = 12.0,
        k_factor_floor_db: float = 0.0,
        speed_scale_mps: float = 6.0,
    ) -> None:
        if speed_scale_mps <= 0:
            raise ValueError("speed_scale_mps must be positive")
        self._rng = rng
        self.k_factor_hover_db = k_factor_hover_db
        self.k_factor_floor_db = k_factor_floor_db
        self.speed_scale_mps = speed_scale_mps

    def k_factor_db(self, relative_speed_mps: float) -> float:
        """Rician K-factor (dB) at the given relative speed."""
        if relative_speed_mps < 0:
            raise ValueError("speed must be non-negative")
        span = self.k_factor_hover_db - self.k_factor_floor_db
        return self.k_factor_floor_db + span * float(np.exp(
            -relative_speed_mps / self.speed_scale_mps
        ))

    def sample_db(self, relative_speed_mps: float = 0.0) -> float:
        """One fading realisation (dB), unit mean power."""
        k_lin = float(np.power(10.0, self.k_factor_db(relative_speed_mps) / 10.0))
        # Rician envelope power: LOS amplitude nu, scatter sigma^2 per
        # component, normalised to unit mean power.
        sigma2 = 1.0 / (2.0 * (k_lin + 1.0))
        nu = math.sqrt(k_lin / (k_lin + 1.0))
        x = float(self._rng.normal(nu, math.sqrt(sigma2)))
        y = float(self._rng.normal(0.0, math.sqrt(sigma2)))
        power = x * x + y * y
        return 10.0 * float(np.log10(max(power, 1e-12)))


class BatchRicianFading:
    """R lockstep Rician fading replicas sharing one generator.

    Mirrors :class:`RicianFading` draw for draw: each step consumes one
    standard normal per replica for the in-phase component and one for
    the quadrature component, so ``n_replicas == 1`` is bit-identical
    to the scalar process on the same stream.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        n_replicas: int,
        k_factor_hover_db: float = 12.0,
        k_factor_floor_db: float = 0.0,
        speed_scale_mps: float = 6.0,
    ) -> None:
        if n_replicas < 1:
            raise ValueError("n_replicas must be >= 1")
        if speed_scale_mps <= 0:
            raise ValueError("speed_scale_mps must be positive")
        self._rng = rng
        self.n_replicas = n_replicas
        self.k_factor_hover_db = k_factor_hover_db
        self.k_factor_floor_db = k_factor_floor_db
        self.speed_scale_mps = speed_scale_mps

    def k_factor_db(self, relative_speed_mps: np.ndarray) -> np.ndarray:
        """Per-replica Rician K-factor (dB) at the given relative speeds."""
        speeds = np.asarray(relative_speed_mps, dtype=float)
        if np.any(speeds < 0):
            raise ValueError("speed must be non-negative")
        span = self.k_factor_hover_db - self.k_factor_floor_db
        return self.k_factor_floor_db + span * np.exp(
            -speeds / self.speed_scale_mps
        )

    def sample_db(self, relative_speed_mps: np.ndarray) -> np.ndarray:
        """One fading realisation (dB) per replica, unit mean power."""
        k_lin = np.power(10.0, self.k_factor_db(relative_speed_mps) / 10.0)
        sigma2 = 1.0 / (2.0 * (k_lin + 1.0))
        nu = np.sqrt(k_lin / (k_lin + 1.0))
        scale = np.sqrt(sigma2)
        # Same composition as Generator.normal(loc, scale): loc+scale*z.
        x = nu + scale * self._rng.normal(0.0, 1.0, size=self.n_replicas)
        y = scale * self._rng.normal(0.0, 1.0, size=self.n_replicas)
        power = x * x + y * y
        return 10.0 * np.log10(np.maximum(power, 1e-12))
