"""Fading processes for the aerial channel.

Two time scales matter for the paper's observations:

* **Slow attitude/orientation fading** — banking airplanes and tilting
  quadrocopters swing their planar antennas through nulls.  Modelled as
  a first-order Gauss-Markov (exponentially correlated) process in dB
  with occasional deep *dropouts* (orientation nulls), the main reason
  auto-rate adaptation collapses in the air.
* **Fast multipath fading** — Rician small-scale fading whose coherence
  time shrinks with relative speed (Doppler), the reason 'move and
  transmit' underperforms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "ShadowingConfig",
    "GaussMarkovShadowing",
    "RicianFading",
    "doppler_coherence_time_s",
]


def doppler_coherence_time_s(
    relative_speed_mps: float, frequency_hz: float = 5.2e9
) -> float:
    """Channel coherence time from the classic ``0.423 / f_d`` rule.

    ``f_d = v / lambda`` is the maximum Doppler shift.  For v = 8 m/s at
    5.2 GHz this gives roughly 3 ms — far below any rate-adaptation
    update interval, which is why moving transmitters fare so poorly.
    """
    if relative_speed_mps < 0:
        raise ValueError("speed must be non-negative")
    wavelength = 299_792_458.0 / frequency_hz
    doppler_hz = relative_speed_mps / wavelength
    if doppler_hz <= 1e-9:
        return float("inf")
    return 0.423 / doppler_hz


@dataclass(frozen=True)
class ShadowingConfig:
    """Parameters of the slow attitude/orientation fading process."""

    sigma_db: float = 4.0
    #: Correlation time of the attitude swings (seconds).
    coherence_time_s: float = 0.5
    #: Probability that a coherence epoch is an orientation null.
    dropout_probability: float = 0.05
    #: Extra attenuation during a null (dB).
    dropout_depth_db: float = 15.0

    def __post_init__(self) -> None:
        if self.sigma_db < 0:
            raise ValueError("sigma_db must be non-negative")
        if self.coherence_time_s <= 0:
            raise ValueError("coherence_time_s must be positive")
        if not 0.0 <= self.dropout_probability <= 1.0:
            raise ValueError("dropout_probability must be in [0, 1]")
        if self.dropout_depth_db < 0:
            raise ValueError("dropout_depth_db must be non-negative")


class GaussMarkovShadowing:
    """Exponentially correlated log-normal shadowing with dropouts.

    ``sample(now)`` returns the current shadowing term in dB (negative =
    fade).  Between calls the process decorrelates with the configured
    coherence time; dropout epochs are redrawn whenever the process has
    decorrelated by more than one coherence time.
    """

    def __init__(self, config: ShadowingConfig, rng: np.random.Generator) -> None:
        self.config = config
        self._rng = rng
        self._value = float(rng.normal(0.0, config.sigma_db)) if config.sigma_db else 0.0
        self._in_dropout = bool(rng.random() < config.dropout_probability)
        self._last_time: float | None = None
        self._epoch_elapsed = 0.0

    def sample(self, now_s: float) -> float:
        """Shadowing value (dB) at time ``now_s`` (non-decreasing calls)."""
        cfg = self.config
        if self._last_time is not None:
            dt = max(0.0, now_s - self._last_time)
            if cfg.sigma_db > 0:
                alpha = math.exp(-dt / cfg.coherence_time_s)
                drive = cfg.sigma_db * math.sqrt(max(0.0, 1.0 - alpha * alpha))
                self._value = alpha * self._value + float(
                    self._rng.normal(0.0, 1.0)
                ) * drive
            self._epoch_elapsed += dt
            if self._epoch_elapsed >= cfg.coherence_time_s:
                self._epoch_elapsed = 0.0
                self._in_dropout = bool(
                    self._rng.random() < cfg.dropout_probability
                )
        self._last_time = now_s
        value = self._value
        if self._in_dropout:
            value -= cfg.dropout_depth_db
        return value


class RicianFading:
    """Small-scale Rician fading sampled per transmission burst.

    The K-factor (ratio of line-of-sight to scattered power) shrinks
    with relative speed: a fast-moving airframe sweeps through the
    ground-reflection interference pattern and its attitude jitters,
    scattering more energy off the direct path.

    ``sample_db(speed)`` returns the instantaneous fading gain in dB
    relative to the mean channel.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        k_factor_hover_db: float = 12.0,
        k_factor_floor_db: float = 0.0,
        speed_scale_mps: float = 6.0,
    ) -> None:
        if speed_scale_mps <= 0:
            raise ValueError("speed_scale_mps must be positive")
        self._rng = rng
        self.k_factor_hover_db = k_factor_hover_db
        self.k_factor_floor_db = k_factor_floor_db
        self.speed_scale_mps = speed_scale_mps

    def k_factor_db(self, relative_speed_mps: float) -> float:
        """Rician K-factor (dB) at the given relative speed."""
        if relative_speed_mps < 0:
            raise ValueError("speed must be non-negative")
        span = self.k_factor_hover_db - self.k_factor_floor_db
        return self.k_factor_floor_db + span * math.exp(
            -relative_speed_mps / self.speed_scale_mps
        )

    def sample_db(self, relative_speed_mps: float = 0.0) -> float:
        """One fading realisation (dB), unit mean power."""
        k_lin = 10.0 ** (self.k_factor_db(relative_speed_mps) / 10.0)
        # Rician envelope power: LOS amplitude nu, scatter sigma^2 per
        # component, normalised to unit mean power.
        sigma2 = 1.0 / (2.0 * (k_lin + 1.0))
        nu = math.sqrt(k_lin / (k_lin + 1.0))
        x = float(self._rng.normal(nu, math.sqrt(sigma2)))
        y = float(self._rng.normal(0.0, math.sqrt(sigma2)))
        power = x * x + y * y
        return 10.0 * math.log10(max(power, 1e-12))
