"""Antenna orientation model for banking/pitching airframes.

The related work the paper builds on (Cheng et al., Yanmaz et al.)
found antenna orientation to be a dominant factor for aerial 802.11
links.  The testbed's planar omnidirectional antennas radiate a
dipole-like pattern: strong broadside, deep nulls along the element
axis.  A banking airplane or a pitching quadrocopter therefore sweeps
the link vector through the pattern, producing the orientation fades
the calibrated :class:`~repro.channel.fading.ShadowingConfig` dropouts
abstract.  This module makes the mechanism explicit, as an alternative
(physically grounded) loss term for ablation studies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["DipolePattern", "AttitudeState", "orientation_loss_db"]


@dataclass(frozen=True)
class DipolePattern:
    """Idealised half-wave dipole gain pattern with a null floor.

    ``gain_db(theta)`` where theta is the angle between the element
    axis and the link direction: 0 along the axis (null), pi/2
    broadside (maximum).
    """

    peak_gain_dbi: float = 2.15
    null_depth_db: float = 25.0

    def gain_db(self, theta_rad: float) -> float:
        """Gain towards ``theta_rad`` off the element axis."""
        s = abs(math.sin(theta_rad))
        if s < 1e-9:
            return self.peak_gain_dbi - self.null_depth_db
        # Half-wave dipole: G(theta) ~ cos(pi/2 cos(theta)) / sin(theta).
        num = math.cos(math.pi / 2.0 * math.cos(theta_rad))
        pattern = (num / s) ** 2
        floor = 10.0 ** (-self.null_depth_db / 10.0)
        return self.peak_gain_dbi + 10.0 * math.log10(max(pattern, floor))


@dataclass(frozen=True)
class AttitudeState:
    """Airframe attitude: roll and pitch in radians (yaw is irrelevant
    for a vertically mounted omni element)."""

    roll_rad: float = 0.0
    pitch_rad: float = 0.0

    def element_axis(self) -> np.ndarray:
        """Unit vector of the (nominally vertical) antenna element."""
        # Rotate the body-z axis by roll about x, then pitch about y.
        cr, sr = math.cos(self.roll_rad), math.sin(self.roll_rad)
        cp, sp = math.cos(self.pitch_rad), math.sin(self.pitch_rad)
        # Body z in world frame after R_y(pitch) R_x(roll).
        return np.array([sp * cr, -sr, cp * cr])


def orientation_loss_db(
    pattern: DipolePattern,
    attitude: AttitudeState,
    link_direction: np.ndarray,
) -> float:
    """Gain deficit (>= 0 dB) relative to perfect broadside alignment.

    ``link_direction`` is the unit vector from transmitter to receiver
    in the world frame.
    """
    direction = np.asarray(link_direction, dtype=float)
    norm = float(np.linalg.norm(direction))
    if norm < 1e-12:
        raise ValueError("link direction must be a non-zero vector")
    direction = direction / norm
    axis = attitude.element_axis()
    cos_theta = float(np.clip(np.dot(axis, direction), -1.0, 1.0))
    theta = math.acos(cos_theta)
    return pattern.peak_gain_dbi - pattern.gain_db(theta)
