"""Legacy setup shim.

Offline environments without the `wheel` package cannot take pip's
PEP 517 editable path; with this shim (and no [build-system] table in
pyproject.toml) pip falls back to `setup.py develop`, which needs only
setuptools.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
